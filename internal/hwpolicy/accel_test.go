package hwpolicy

import (
	"testing"
	"testing/quick"

	"rlpm/internal/bus"
	"rlpm/internal/fixed"
)

func smallParams() Params {
	return Params{NumStates: 12, NumActions: 5, Banks: 1, LFSRSeed: 0xACE1}
}

func newAccel(t *testing.T, p Params) *Accel {
	t.Helper()
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{NumStates: 0, NumActions: 1, Banks: 1, LFSRSeed: 1},
		{NumStates: 1, NumActions: 0, Banks: 1, LFSRSeed: 1},
		{NumStates: 1, NumActions: 65, Banks: 1, LFSRSeed: 1},
		{NumStates: 1, NumActions: 1, Banks: 0, LFSRSeed: 1},
		{NumStates: 1, NumActions: 1, Banks: 1, LFSRSeed: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestRegisterFileReadWrite(t *testing.T) {
	a := newAccel(t, smallParams())
	cases := []struct {
		reg uint32
		val uint32
	}{
		{RegState, 7},
		{RegReward, uint32(fixed.FromFloat(-1.5).Raw())},
		{RegAlpha, uint32(fixed.FromFloat(0.25).Raw())},
		{RegGamma, uint32(fixed.FromFloat(0.9).Raw())},
		{RegEpsilon, uint32(fixed.FromFloat(0.1).Raw())},
		{RegQAddr, 11},
		{RegLearn, 0},
	}
	for _, c := range cases {
		if _, err := a.WriteReg(c.reg, c.val); err != nil {
			t.Fatalf("write %#x: %v", c.reg, err)
		}
		got, err := a.ReadReg(c.reg)
		if err != nil {
			t.Fatalf("read %#x: %v", c.reg, err)
		}
		if got != c.val {
			t.Fatalf("reg %#x = %#x, want %#x", c.reg, got, c.val)
		}
	}
}

func TestRegisterFileErrors(t *testing.T) {
	a := newAccel(t, smallParams())
	if _, err := a.WriteReg(RegState, 99); err == nil {
		t.Error("out-of-range state accepted")
	}
	if _, err := a.WriteReg(RegQAddr, 999); err == nil {
		t.Error("out-of-range Q address accepted")
	}
	if _, err := a.WriteReg(RegAction, 1); err == nil {
		t.Error("write to read-only action register accepted")
	}
	if _, err := a.WriteReg(RegStatus, 1); err == nil {
		t.Error("write to read-only status register accepted")
	}
	if _, err := a.WriteReg(0x40, 1); err == nil {
		t.Error("unmapped write accepted")
	}
	if _, err := a.ReadReg(0x40); err == nil {
		t.Error("unmapped read accepted")
	}
	if _, err := a.WriteReg(RegCtrl, 0xbeef); err == nil {
		t.Error("unknown control command accepted")
	}
}

func TestQPortRoundTrip(t *testing.T) {
	a := newAccel(t, smallParams())
	want := fixed.FromFloat(2.5)
	if _, err := a.WriteReg(RegQAddr, 13); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteReg(RegQData, uint32(want.Raw())); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadReg(RegQData)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.FromRaw(int32(got)) != want {
		t.Fatalf("QData = %v, want %v", fixed.FromRaw(int32(got)), want)
	}
}

func TestStepCycles(t *testing.T) {
	// 9 actions over 4 banks: fetch ceil(9/4)=3, tree ceil(log2 9)=4,
	// mac 3, wb 1, sel 1 → 12 cycles.
	a := newAccel(t, DefaultParams())
	if got := a.StepCycles(); got != 12 {
		t.Fatalf("StepCycles = %d, want 12", got)
	}
	// 5 actions, 1 bank: 5 + 3 + 3 + 1 + 1 = 13.
	b := newAccel(t, smallParams())
	if got := b.StepCycles(); got != 13 {
		t.Fatalf("StepCycles small = %d, want 13", got)
	}
}

func TestGreedyStepMatchesArgmax(t *testing.T) {
	a := newAccel(t, smallParams())
	// Load a table where state 3's best action is 2.
	table := make([][]float64, 12)
	for s := range table {
		table[s] = make([]float64, 5)
	}
	table[3] = []float64{-1, 0.5, 2.0, 1.9, -3}
	if err := a.LoadTable(table); err != nil {
		t.Fatal(err)
	}
	_, _ = a.WriteReg(RegLearn, 0) // inference only
	_, _ = a.WriteReg(RegState, 3)
	if _, err := a.WriteReg(RegCtrl, CtrlStep); err != nil {
		t.Fatal(err)
	}
	act, _ := a.ReadReg(RegAction)
	if act != 2 {
		t.Fatalf("action = %d, want 2", act)
	}
	st, _ := a.ReadReg(RegStatus)
	if st&StatusDone == 0 {
		t.Fatal("done bit not set")
	}
}

func TestUpdateMatchesFixedPointReference(t *testing.T) {
	// The hardware Q-update must be bit-exact with the fixed-point
	// formula Q' = Q + α·((r + γ·max) − Q) computed with internal/fixed.
	p := smallParams()
	a := newAccel(t, p)
	alpha, gamma := fixed.FromFloat(0.25), fixed.FromFloat(0.5)
	_, _ = a.WriteReg(RegAlpha, uint32(alpha.Raw()))
	_, _ = a.WriteReg(RegGamma, uint32(gamma.Raw()))
	_, _ = a.WriteReg(RegEpsilon, 0)

	// Step 1: state 0, establishes prev=(0, argmax row0 = 0).
	_, _ = a.WriteReg(RegState, 0)
	_, _ = a.WriteReg(RegReward, 0)
	_, _ = a.WriteReg(RegCtrl, CtrlStep)

	// Seed state 1's row so its max is known.
	_, _ = a.WriteReg(RegQAddr, uint32(1*p.NumActions+3))
	maxQ := fixed.FromFloat(1.75)
	_, _ = a.WriteReg(RegQData, uint32(maxQ.Raw()))

	// Step 2: state 1 with reward −0.5 updates Q[0][0].
	reward := fixed.FromFloat(-0.5)
	_, _ = a.WriteReg(RegState, 1)
	_, _ = a.WriteReg(RegReward, uint32(reward.Raw()))
	_, _ = a.WriteReg(RegCtrl, CtrlStep)

	_, _ = a.WriteReg(RegQAddr, 0)
	got, _ := a.ReadReg(RegQData)
	want := fixed.Add(0, fixed.Mul(alpha, fixed.Sub(fixed.Add(reward, fixed.Mul(gamma, maxQ)), 0)))
	if fixed.FromRaw(int32(got)) != want {
		t.Fatalf("Q[0][0] = %v, want %v", fixed.FromRaw(int32(got)), want)
	}
}

func TestInferenceModeDoesNotUpdate(t *testing.T) {
	a := newAccel(t, smallParams())
	_, _ = a.WriteReg(RegLearn, 0)
	_, _ = a.WriteReg(RegState, 0)
	_, _ = a.WriteReg(RegReward, uint32(fixed.FromFloat(-5).Raw()))
	_, _ = a.WriteReg(RegCtrl, CtrlStep)
	_, _ = a.WriteReg(RegState, 1)
	_, _ = a.WriteReg(RegCtrl, CtrlStep)
	for i, row := range a.Table() {
		for j, v := range row {
			if v != 0 {
				t.Fatalf("Q[%d][%d] = %v after inference-only steps", i, j, v)
			}
		}
	}
}

func TestExplorationUsesLFSR(t *testing.T) {
	a := newAccel(t, smallParams())
	_, _ = a.WriteReg(RegEpsilon, uint32(fixed.One.Raw())) // always explore
	seen := map[uint32]bool{}
	for i := 0; i < 200; i++ {
		_, _ = a.WriteReg(RegState, uint32(i%12))
		_, _ = a.WriteReg(RegCtrl, CtrlStep)
		act, _ := a.ReadReg(RegAction)
		if act >= 5 {
			t.Fatalf("explored action %d out of range", act)
		}
		seen[act] = true
	}
	if len(seen) < 4 {
		t.Fatalf("exploration visited only %d actions", len(seen))
	}
}

func TestLFSRDeterministicAndFullPeriodish(t *testing.T) {
	a := newAccel(t, smallParams())
	b := newAccel(t, smallParams())
	seen := map[uint16]bool{}
	for i := 0; i < 65535; i++ {
		va, vb := a.nextLFSR(), b.nextLFSR()
		if va != vb {
			t.Fatalf("LFSR diverged at %d", i)
		}
		if seen[va] {
			t.Fatalf("LFSR repeated after %d draws", i)
		}
		seen[va] = true
	}
}

func TestCtrlResetClearsEverything(t *testing.T) {
	a := newAccel(t, smallParams())
	_, _ = a.WriteReg(RegState, 3)
	_, _ = a.WriteReg(RegReward, uint32(fixed.FromFloat(-1).Raw()))
	_, _ = a.WriteReg(RegCtrl, CtrlStep)
	_, _ = a.WriteReg(RegCtrl, CtrlStep)
	if a.Steps() == 0 {
		t.Fatal("steps not counted")
	}
	_, _ = a.WriteReg(RegCtrl, CtrlReset)
	if a.Steps() != 0 || a.TotalCycles() != 0 {
		t.Fatal("counters not reset")
	}
	st, _ := a.ReadReg(RegStatus)
	if st != 0 {
		t.Fatal("status not reset")
	}
	for _, row := range a.Table() {
		for _, v := range row {
			if v != 0 {
				t.Fatal("table not cleared")
			}
		}
	}
}

func TestLoadTableValidatesShape(t *testing.T) {
	a := newAccel(t, smallParams())
	if err := a.LoadTable(make([][]float64, 3)); err == nil {
		t.Fatal("short table accepted")
	}
	bad := make([][]float64, 12)
	for i := range bad {
		bad[i] = make([]float64, 5)
	}
	bad[4] = bad[4][:2]
	if err := a.LoadTable(bad); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestDriverStepTransaction(t *testing.T) {
	a := newAccel(t, smallParams())
	d, err := NewDriver(bus.DefaultConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(0.2, 0.85, 0, true); err != nil {
		t.Fatal(err)
	}
	act, lat, err := d.Step(3, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if act < 0 || act >= 5 {
		t.Fatalf("action %d out of range", act)
	}
	// 3 writes (4 cycles each @200MHz) + compute (13 cycles @100MHz) +
	// read (6 cycles @200MHz) = 60ns + 130ns + 30ns = 220ns (±1ns of
	// float-to-integer truncation).
	if got := lat.Nanoseconds(); got < 219 || got > 221 {
		t.Fatalf("transaction latency = %dns, want ~220ns", got)
	}
	if _, _, err := d.Step(99, 0); err == nil {
		t.Fatal("out-of-range state accepted")
	}
}

func TestDriverUploadTable(t *testing.T) {
	a := newAccel(t, smallParams())
	d, _ := NewDriver(bus.DefaultConfig(), a)
	table := make([][]float64, 12)
	for s := range table {
		table[s] = make([]float64, 5)
		for x := range table[s] {
			table[s][x] = float64(s) - float64(x)*0.25
		}
	}
	if err := d.UploadTable(table); err != nil {
		t.Fatal(err)
	}
	got := a.Table()
	for s := range table {
		for x := range table[s] {
			if got[s][x] != table[s][x] {
				t.Fatalf("Q[%d][%d] = %v, want %v", s, x, got[s][x], table[s][x])
			}
		}
	}
	if err := d.UploadTable(table[:2]); err == nil {
		t.Fatal("short upload accepted")
	}
}

func TestCompareLatency(t *testing.T) {
	a := newAccel(t, DefaultParams())
	d, _ := NewDriver(bus.DefaultConfig(), a)
	c, err := Compare(DefaultSWLatency(), d)
	if err != nil {
		t.Fatal(err)
	}
	if c.HWTotal <= c.HWDecision {
		t.Fatalf("HW total %v should exceed compute-only %v", c.HWTotal, c.HWDecision)
	}
	// The paper's bands: decision speedup ≈ 3.92×, total up to ~40×.
	if c.SpeedupDecision < 2.5 || c.SpeedupDecision > 6 {
		t.Fatalf("decision speedup %.2f outside the paper's band", c.SpeedupDecision)
	}
	if c.SpeedupTotal < 10 || c.SpeedupTail > 60 {
		t.Fatalf("total/tail speedups %.1f/%.1f outside the plausible band", c.SpeedupTotal, c.SpeedupTail)
	}
	if c.SpeedupTail < c.SpeedupTotal {
		t.Fatal("tail speedup below mean speedup")
	}
}

func TestSWLatencyModelValidate(t *testing.T) {
	m := DefaultSWLatency()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.CPUFreqHz = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero CPU freq accepted")
	}
	m = DefaultSWLatency()
	m.RowMissNs = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative miss accepted")
	}
}

func TestEstimateResourcesScaling(t *testing.T) {
	small, err := EstimateResources(Params{NumStates: 256, NumActions: 4, Banks: 1, LFSRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := EstimateResources(Params{NumStates: 4096, NumActions: 16, Banks: 4, LFSRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.BRAM36 <= small.BRAM36 {
		t.Fatalf("BRAM not scaling: %d vs %d", big.BRAM36, small.BRAM36)
	}
	if big.LUT <= small.LUT {
		t.Fatalf("LUT not scaling: %d vs %d", big.LUT, small.LUT)
	}
	if big.FmaxMHz >= small.FmaxMHz {
		t.Fatalf("Fmax should drop with tree depth: %v vs %v", big.FmaxMHz, small.FmaxMHz)
	}
	if small.DSP48 != 2 || big.DSP48 != 2 {
		t.Fatal("MAC should cost a fixed two DSP slices")
	}
	if _, err := EstimateResources(Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Property: for any state/reward sequence, actions are in range and the
// table stays finite (saturating arithmetic can't produce NaN/Inf).
func TestStepInvariantsProperty(t *testing.T) {
	p := smallParams()
	f := func(seq []uint16) bool {
		a, _ := New(p)
		_, _ = a.WriteReg(RegEpsilon, uint32(fixed.FromFloat(0.3).Raw()))
		for _, v := range seq {
			_, _ = a.WriteReg(RegState, uint32(v)%uint32(p.NumStates))
			_, _ = a.WriteReg(RegReward, uint32(fixed.FromFloat(float64(int16(v))/64).Raw()))
			if _, err := a.WriteReg(RegCtrl, CtrlStep); err != nil {
				return false
			}
			act, _ := a.ReadReg(RegAction)
			if act >= uint32(p.NumActions) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccelStep(b *testing.B) {
	a, _ := New(DefaultParams())
	_, _ = a.WriteReg(RegState, 5)
	_, _ = a.WriteReg(RegReward, uint32(fixed.FromFloat(-0.5).Raw()))
	for i := 0; i < b.N; i++ {
		_, _ = a.WriteReg(RegCtrl, CtrlStep)
	}
}

func BenchmarkDriverStep(b *testing.B) {
	a, _ := New(DefaultParams())
	d, _ := NewDriver(bus.DefaultConfig(), a)
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Step(i%864, -0.5); err != nil {
			b.Fatal(err)
		}
	}
}
