package hwpolicy

import (
	"fmt"
	"time"
)

// SWLatencyModel is the analytic latency model of the software-implemented
// policy running on a mobile CPU — the baseline of the paper's Table 2.
//
// The software decision kernel touches the Q-row (a DRAM/L2 access per
// row on a cold governor path), runs the argmax and the update in scalar
// code, and — crucially — only runs after the cpufreq governor machinery
// has scheduled it (timer/softirq wakeup, cpufreq lock, cache refill). The
// paper reports two numbers that bracket this: decision-making alone is
// 3.92× slower than hardware, and average latency including the invocation
// path is up to 40× worse.
type SWLatencyModel struct {
	// CPUFreqHz is the clock of the core running the governor (a LITTLE
	// core at a mid OPP in the paper's platform).
	CPUFreqHz float64
	// EncodeCycles covers state encoding (discretization, scaling).
	EncodeCycles uint64
	// RowMissNs is the memory latency to pull the Q-row (one cache line)
	// on the cold governor path.
	RowMissNs float64
	// PerActionCycles covers the scalar compare/select per action.
	PerActionCycles uint64
	// UpdateCycles covers the floating-point Q-update.
	UpdateCycles uint64
	// InvocationOverheadNs is the mean cost of getting the governor
	// callback running: timer wheel, softirq dispatch, cpufreq policy
	// lock, cache warmup.
	InvocationOverheadNs float64
	// TailInvocationNs is the tail (≈P99) invocation cost on a loaded
	// system — behind the paper's "average latency reduced by up to 40×".
	TailInvocationNs float64
}

// DefaultSWLatency returns the model calibrated for the paper's platform
// class: scalar floating-point governor code on a 1.4 GHz in-order LITTLE
// core, ~120 ns DRAM row pull on the cold path, ~5 µs mean invocation
// path with a ~8 µs tail under load.
func DefaultSWLatency() SWLatencyModel {
	return SWLatencyModel{
		CPUFreqHz:            1.4e9,
		EncodeCycles:         280,
		RowMissNs:            120,
		PerActionCycles:      32,
		UpdateCycles:         420,
		InvocationOverheadNs: 5000,
		TailInvocationNs:     8000,
	}
}

// Validate checks the model.
func (m SWLatencyModel) Validate() error {
	if m.CPUFreqHz <= 0 {
		return fmt.Errorf("hwpolicy: CPU frequency must be positive")
	}
	if m.RowMissNs < 0 || m.InvocationOverheadNs < 0 {
		return fmt.Errorf("hwpolicy: negative latency component")
	}
	return nil
}

// DecisionLatency returns the software decision-kernel latency (no
// invocation overhead) for a table with numActions actions.
func (m SWLatencyModel) DecisionLatency(numActions int) time.Duration {
	cycles := m.EncodeCycles + uint64(numActions)*m.PerActionCycles + m.UpdateCycles
	ns := float64(cycles)/m.CPUFreqHz*1e9 + m.RowMissNs
	return time.Duration(ns * float64(time.Nanosecond))
}

// TotalLatency returns the software path latency including the mean
// governor invocation overhead — what the CPU actually waits between
// "decision needed" and "frequency written".
func (m SWLatencyModel) TotalLatency(numActions int) time.Duration {
	return m.DecisionLatency(numActions) + time.Duration(m.InvocationOverheadNs*float64(time.Nanosecond))
}

// TailLatency returns the software path latency with the tail invocation
// overhead.
func (m SWLatencyModel) TailLatency(numActions int) time.Duration {
	return m.DecisionLatency(numActions) + time.Duration(m.TailInvocationNs*float64(time.Nanosecond))
}

// Comparison is one row of the Table 2 reproduction.
type Comparison struct {
	SWDecision time.Duration // software decision kernel
	SWTotal    time.Duration // software kernel + mean invocation overhead
	SWTail     time.Duration // software kernel + tail invocation overhead
	HWDecision time.Duration // accelerator compute only
	HWTotal    time.Duration // bus transaction + compute (driver Step)
	// SpeedupDecision is SWDecision / HWTotal — the paper's
	// "decision-making by hardware is N× faster" framing compares the
	// software kernel against the full hardware transaction.
	SpeedupDecision float64
	// SpeedupTotal is SWTotal / HWTotal — the "average latency reduced"
	// framing, which includes the software invocation path.
	SpeedupTotal float64
	// SpeedupTail is SWTail / HWTotal — the "up to N×" bound.
	SpeedupTail float64
}

// Compare produces the latency comparison for a driver-connected
// accelerator against the software model. It resets the driver's bus
// clock to time one clean transaction.
func Compare(m SWLatencyModel, d *Driver) (Comparison, error) {
	if err := m.Validate(); err != nil {
		return Comparison{}, err
	}
	accel := d.Accel()
	d.Bus().ResetClock()
	_, hwTotal, err := d.Step(0, 0)
	if err != nil {
		return Comparison{}, err
	}
	devHz := d.Bus().Config().DeviceClockHz
	hwDecision := time.Duration(float64(accel.StepCycles()) / devHz * float64(time.Second))

	n := accel.Params().NumActions
	c := Comparison{
		SWDecision: m.DecisionLatency(n),
		SWTotal:    m.TotalLatency(n),
		SWTail:     m.TailLatency(n),
		HWDecision: hwDecision,
		HWTotal:    hwTotal,
	}
	if hwTotal > 0 {
		c.SpeedupDecision = float64(c.SWDecision) / float64(hwTotal)
		c.SpeedupTotal = float64(c.SWTotal) / float64(hwTotal)
		c.SpeedupTail = float64(c.SWTail) / float64(hwTotal)
	}
	return c, nil
}
