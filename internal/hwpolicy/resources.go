package hwpolicy

import "fmt"

// Resources estimates the FPGA utilization of the accelerator — the
// journal extension's implementation-cost table. The estimates follow
// standard Xilinx 7-series costing:
//
//   - BRAM36: the Q-table, 32-bit words, one 36Kb block per 1024 words per
//     bank (each bank needs its own port).
//   - DSP48: one slice for the α·(target−Q) multiply, one for γ·max.
//   - LUTs/FFs: comparator tree (one 32-bit compare+mux per node), the
//     register file, LFSR, and control FSM.
type Resources struct {
	BRAM36 int
	DSP48  int
	LUT    int
	FF     int
	// FmaxMHz is the estimated achievable fabric clock: the comparator
	// tree is combinational across its depth, so deeper trees close at
	// lower frequency.
	FmaxMHz float64
}

// EstimateResources sizes the accelerator for the given parameters.
func EstimateResources(p Params) (Resources, error) {
	if err := p.Validate(); err != nil {
		return Resources{}, err
	}
	words := p.NumStates * p.NumActions
	wordsPerBank := (words + p.Banks - 1) / p.Banks
	bramPerBank := (wordsPerBank + 1023) / 1024
	if bramPerBank < 1 {
		bramPerBank = 1
	}

	treeNodes := p.NumActions - 1
	if treeNodes < 1 {
		treeNodes = 1
	}
	const (
		lutPerTreeNode = 48 // 32-bit compare + index/value mux
		ffPerTreeNode  = 40
		lutControl     = 420 // FSM, register file, AXI-Lite shim
		ffControl      = 510
		lutLFSR        = 20
		ffLFSR         = 16
		lutMAC         = 180 // saturation, operand muxing around the DSPs
		ffMAC          = 140
	)

	depth := treeDepth(p.NumActions)
	// Closure model: 250 MHz for a trivial tree, −18 MHz per extra level.
	fmax := 250.0 - 18.0*float64(depth-1)
	if fmax < 50 {
		fmax = 50
	}

	return Resources{
		BRAM36:  bramPerBank * p.Banks,
		DSP48:   2,
		LUT:     lutControl + lutLFSR + lutMAC + treeNodes*lutPerTreeNode,
		FF:      ffControl + ffLFSR + ffMAC + treeNodes*ffPerTreeNode,
		FmaxMHz: fmax,
	}, nil
}

// String formats the estimate as a table row.
func (r Resources) String() string {
	return fmt.Sprintf("BRAM36=%d DSP48=%d LUT=%d FF=%d Fmax=%.0fMHz",
		r.BRAM36, r.DSP48, r.LUT, r.FF, r.FmaxMHz)
}
