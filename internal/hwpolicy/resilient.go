package hwpolicy

import (
	"fmt"
	"time"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/fixed"
	"rlpm/internal/governor"
	"rlpm/internal/obs"
	"rlpm/internal/sim"
)

// rungNames label the health ladder's decision sources in events.
var rungNames = [...]string{"hardware", "software policy", "ondemand"}

// Resilient runs the hardware policy behind a fault-tolerant driver and
// degrades gracefully when the hardware path misbehaves. It is the
// production-shaped counterpart of Governor, built for platforms where
// the interconnect, the Q BRAM, or the telemetry can fault:
//
//   - every decision transaction is watchdog-bounded (bus.Config's
//     WatchdogCycles) and retried with doubling backoff after a recovery
//     pulse, so a wedged accelerator can never stall the control loop;
//   - a health ladder demotes the decision source after DemoteAfter
//     consecutive faulty periods: hardware → the software RL policy (the
//     paper's SW implementation, kept hot in shadow) → the kernel's
//     ondemand governor as last resort;
//   - while demoted, the driver probes the hardware (a status read
//     through the same faulty bus) every period and re-promotes one rung
//     after PromoteAfter consecutive clean probes — a probation window;
//   - telemetry drops (detected read failures, flagged by the fault
//     filter) demote past the RL rungs when persistent, because both RL
//     implementations encode state from telemetry; ondemand on the
//     last-known-good sample is the conservative floor.
//
// With a nil injector the stack is byte-identical to the plain hardware
// governor (FromPolicy): same bus transactions, same decisions, same
// latencies — the differential test pins that.
type Resilient struct {
	rc  ResilientConfig
	inj *fault.Injector

	sw     *core.Policy // shadow software policy (rung 1)
	od     sim.Governor // ondemand fallback (rung 2)
	filter *fault.ObsFilter

	drivers    []*Driver
	prevDemand []float64
	tables     [][][]float64 // trained snapshot, re-uploaded on init/reset

	rung           int // 0 = hardware, 1 = software policy, 2 = ondemand
	consecHWFaults int
	consecTelem    int
	cleanProbes    int
	cleanTelem     int

	stats  ResilientStats
	events *obs.EventLog // nil: transitions are counted but not narrated
}

var _ sim.Governor = (*Resilient)(nil)

// ResilientConfig parameterizes the fault-tolerant stack.
type ResilientConfig struct {
	// Core is the RL configuration (state encoding, reward).
	Core core.Config
	// Bus is the interconnect timing; set WatchdogCycles > 0 or wedged
	// devices will stall reads for their full busy time.
	Bus bus.Config
	// Banks is the accelerator BRAM banking.
	Banks int
	// Retries is how many times a failed decision transaction is
	// retried (after a recovery pulse and backoff) before the period
	// counts as faulty and the shadow policy's decision is used.
	Retries int
	// BackoffCycles is the bus-clock idle inserted before the first
	// retry; it doubles on each subsequent retry.
	BackoffCycles uint64
	// DemoteAfter is the number of consecutive faulty periods that
	// demotes the decision source one rung.
	DemoteAfter int
	// PromoteAfter is the probation window: consecutive clean periods
	// (probes at rung 1, telemetry at rung 2) before promoting one rung.
	PromoteAfter int
	// Scrub enables the accelerator's parity-protected Q BRAM: injected
	// bit flips are detected on fetch and the word is scrubbed to zero
	// instead of silently steering decisions.
	Scrub bool
}

// DefaultResilientConfig returns the deployment defaults: the paper's bus
// timing with a 4096-cycle (≈20 µs) watchdog — generous against latency
// spikes, tiny against a wedge — two retries with 64-cycle backoff,
// demotion after 3 consecutive faulty periods, and a 25-period probation.
func DefaultResilientConfig() ResilientConfig {
	busCfg := bus.DefaultConfig()
	busCfg.WatchdogCycles = 4096
	return ResilientConfig{
		Core:          core.DefaultConfig(),
		Bus:           busCfg,
		Banks:         DefaultParams().Banks,
		Retries:       2,
		BackoffCycles: 64,
		DemoteAfter:   3,
		PromoteAfter:  25,
	}
}

// Validate checks the configuration.
func (rc ResilientConfig) Validate() error {
	if err := rc.Core.Validate(); err != nil {
		return err
	}
	if err := rc.Bus.Validate(); err != nil {
		return err
	}
	if rc.Banks < 1 {
		return fmt.Errorf("hwpolicy: need at least one BRAM bank")
	}
	if rc.Retries < 0 {
		return fmt.Errorf("hwpolicy: negative retry count %d", rc.Retries)
	}
	if rc.DemoteAfter < 1 {
		return fmt.Errorf("hwpolicy: DemoteAfter must be at least 1, got %d", rc.DemoteAfter)
	}
	if rc.PromoteAfter < 1 {
		return fmt.Errorf("hwpolicy: PromoteAfter must be at least 1, got %d", rc.PromoteAfter)
	}
	return nil
}

// ResilientStats is the health ledger the faults experiment reports.
type ResilientStats struct {
	Decisions uint64 // periods decided
	PeriodsHW uint64 // periods decided by the accelerator
	PeriodsSW uint64 // periods decided by the software policy
	PeriodsOD uint64 // periods decided by ondemand

	HWFaults        uint64 // decision transactions that failed all retries
	Retries         uint64 // individual transaction retries
	TelemetryFaults uint64 // dropped telemetry samples detected
	Demotions       uint64 // rung demotions
	Promotions      uint64 // rung promotions
	UploadSkips     uint64 // Q-table words abandoned during bring-up

	TotalLat time.Duration // accumulated hardware transaction latency
	MaxLat   time.Duration
}

// NewResilient deploys a trained software policy p both onto the modeled
// accelerator (inference mode, like FromPolicy) and as its own hot shadow
// fallback. p must have been driven at least once (so its tables exist)
// and should be frozen with SetLearning(false); the resilient stack never
// mutates it. inj may be nil for a fault-free deployment — the stack then
// behaves exactly like the plain hardware governor.
func NewResilient(p *core.Policy, rc ResilientConfig, inj *fault.Injector) (*Resilient, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	snap, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	r := &Resilient{
		rc:     rc,
		inj:    inj,
		sw:     p,
		od:     governor.NewOndemand(),
		tables: snap.Tables,
	}
	if inj != nil {
		r.filter = fault.NewObsFilter(inj)
	}
	return r, nil
}

// SetEventLog attaches a bounded event log; health-ladder transitions
// (demotions, promotions, bring-up failures) are then recorded as
// structured events. The hook never changes decisions or timing, so a
// run with and without it attached is byte-identical.
func (r *Resilient) SetEventLog(l *obs.EventLog) { r.events = l }

// event records a ladder transition when a log is attached.
func (r *Resilient) event(format string, args ...any) {
	if r.events != nil {
		r.events.Addf("hwpolicy", format, args...)
	}
}

// Name implements sim.Governor.
func (*Resilient) Name() string { return "rl-policy-resilient" }

// Rung returns the current decision source: 0 hardware, 1 software
// policy, 2 ondemand.
func (r *Resilient) Rung() int { return r.rung }

// Stats returns the health ledger.
func (r *Resilient) Stats() ResilientStats { return r.stats }

// Scrubs sums the parity scrubs across all cluster accelerators.
func (r *Resilient) Scrubs() uint64 {
	var n uint64
	for _, d := range r.drivers {
		n += d.Accel().Scrubs()
	}
	return n
}

// Drivers exposes the per-cluster drivers (nil before the first Decide).
func (r *Resilient) Drivers() []*Driver { return r.drivers }

func (r *Resilient) init(obs []sim.Observation) error {
	r.drivers = make([]*Driver, len(obs))
	r.prevDemand = make([]float64, len(obs))
	for i, o := range obs {
		p := Params{
			NumStates:  r.rc.Core.State.States(o.NumLevels),
			NumActions: o.NumLevels,
			Banks:      r.rc.Banks,
			LFSRSeed:   uint16(0xACE1 + 2*i + 1),
		}
		accel, err := New(p)
		if err != nil {
			return fmt.Errorf("hwpolicy: sizing accelerator for cluster %d: %w", i, err)
		}
		if r.rc.Scrub {
			accel.EnableParity(true)
		}
		var dev bus.Device = accel
		if r.inj != nil {
			cfg := r.inj.Config()
			if cfg.LFSRStuckMask != 0 {
				accel.SetLFSRStuck(cfg.LFSRStuckMask, cfg.LFSRStuckVal)
			}
			dev = fault.NewDevice(accel, accel, r.inj)
		}
		d, err := NewDriverDevice(r.rc.Bus, accel, dev)
		if err != nil {
			return fmt.Errorf("hwpolicy: wiring driver for cluster %d: %w", i, err)
		}
		// Bring-up runs over the same (possibly faulty) wires, so retry
		// at single-transaction granularity — posted register writes are
		// idempotent. Configuration registers are load-bearing: if one
		// still fails after the retry budget, bring-up fails and the
		// stack starts demoted. A Q-table word that still fails is
		// skipped instead: the cell stays at its reset value and costs a
		// sliver of decision quality, not the whole accelerator.
		cfgWrites := [...][2]uint32{
			{RegAlpha, uint32(fixed.FromFloat(r.rc.Core.Alpha).Raw())},
			{RegGamma, uint32(fixed.FromFloat(r.rc.Core.Gamma).Raw())},
			{RegEpsilon, 0},
			{RegLearn, 0},
		}
		for _, wv := range cfgWrites {
			reg, val := wv[0], wv[1]
			if err := r.retrying(d, func() error { return d.Bus().Write(reg, val) }); err != nil {
				return fmt.Errorf("hwpolicy: configuring cluster %d: %w", i, err)
			}
		}
		if i < len(r.tables) {
			tab := r.tables[i]
			if len(tab) != p.NumStates {
				return fmt.Errorf("hwpolicy: cluster %d snapshot has %d states, accelerator sized for %d: %w",
					i, len(tab), p.NumStates, ErrOutOfRange)
			}
			for s, rowVals := range tab {
				if len(rowVals) != p.NumActions {
					return fmt.Errorf("hwpolicy: cluster %d snapshot row %d has %d actions, want %d: %w",
						i, s, len(rowVals), p.NumActions, ErrOutOfRange)
				}
				for x, v := range rowVals {
					idx := uint32(s*p.NumActions + x)
					raw := uint32(fixed.FromFloat(v).Raw())
					err := r.retrying(d, func() error {
						if err := d.Bus().Write(RegQAddr, idx); err != nil {
							return err
						}
						return d.Bus().Write(RegQData, raw)
					})
					if err != nil {
						r.stats.UploadSkips++
					}
				}
			}
		}
		r.drivers[i] = d
	}
	return nil
}

// retrying runs op with the driver's recovery/backoff discipline.
func (r *Resilient) retrying(d *Driver, op func() error) error {
	var err error
	for attempt := 0; attempt <= r.rc.Retries; attempt++ {
		if attempt > 0 {
			r.stats.Retries++
			d.Bus().Recover()
			d.Bus().Idle(r.rc.BackoffCycles << uint(attempt-1))
		}
		if err = op(); err == nil {
			return nil
		}
	}
	d.Bus().Recover()
	return err
}

// stepHW runs one bounded decision transaction for cluster i. ok reports
// whether any attempt succeeded.
func (r *Resilient) stepHW(i, state int, reward float64) (action int, ok bool) {
	d := r.drivers[i]
	err := r.retrying(d, func() error {
		act, lat, e := d.Step(state, reward)
		if e != nil {
			return e
		}
		action = act
		r.stats.TotalLat += lat
		if lat > r.stats.MaxLat {
			r.stats.MaxLat = lat
		}
		return nil
	})
	if err != nil {
		r.stats.HWFaults++
		return 0, false
	}
	return action, true
}

// probeHW checks hardware health from a demoted rung: one status read per
// cluster through the faulty bus. All must succeed for a clean probe.
func (r *Resilient) probeHW() bool {
	if len(r.drivers) == 0 {
		return false // bring-up failed; there is no hardware to go back to
	}
	ok := true
	for _, d := range r.drivers {
		if _, err := d.Bus().Read(RegStatus); err != nil {
			d.Bus().Recover()
			ok = false
		}
	}
	return ok
}

// Decide implements sim.Governor. It never panics and never blocks
// unboundedly: every hardware interaction is watchdog-bounded and capped
// at Retries attempts, and a failed period falls through to the shadow
// policies, which are pure software.
func (r *Resilient) Decide(obs []sim.Observation) []int {
	if r.drivers == nil {
		if err := r.init(obs); err != nil {
			// Hardware bring-up failed outright (e.g. the injector killed
			// every upload attempt): run demoted from the start.
			r.drivers = make([]*Driver, 0) // non-nil: don't re-init every period
			r.rung = 1
			r.stats.Demotions++
			r.event("bring-up failed, starting demoted to %s: %v", rungNames[1], err)
			r.stats.Decisions++
			r.stats.PeriodsSW++
			return r.sw.Decide(obs)
		}
	}
	r.stats.Decisions++

	// Telemetry path: filter (when injecting) and count detected drops.
	fobs := obs
	droppedPeriod := false
	if r.filter != nil {
		var flags []fault.Flags
		fobs, flags = r.filter.Apply(obs)
		for _, fl := range flags {
			if fl.Dropped {
				r.stats.TelemetryFaults++
				droppedPeriod = true
			}
		}
	}

	// Shadow decisions every period: the software policy and ondemand
	// stay hot so a demotion mid-run continues a coherent control law.
	swAct := r.sw.Decide(fobs)
	odAct := r.od.Decide(fobs)

	var out []int
	switch r.rung {
	case 0:
		out = make([]int, len(fobs))
		periodFault := false
		for i, o := range fobs {
			state := r.rc.Core.EncodeState(o, r.prevDemand[i])
			reward := r.rc.Core.Reward(o)
			if len(r.drivers) != len(fobs) {
				periodFault = true
				out[i] = swAct[i]
				continue
			}
			act, ok := r.stepHW(i, state, reward)
			if ok && act >= 0 && act < o.NumLevels {
				out[i] = act
			} else {
				// Failed transaction or corrupted action read: this
				// period rides on the shadow policy for this cluster.
				periodFault = true
				out[i] = swAct[i]
			}
		}
		r.stats.PeriodsHW++
		if periodFault {
			r.consecHWFaults++
			if r.consecHWFaults >= r.rc.DemoteAfter {
				r.demote(fmt.Sprintf("%d consecutive faulty periods", r.consecHWFaults))
			}
		} else {
			r.consecHWFaults = 0
		}
	case 1:
		out = swAct
		r.stats.PeriodsSW++
		if r.probeHW() {
			r.cleanProbes++
			if r.cleanProbes >= r.rc.PromoteAfter {
				r.promote(fmt.Sprintf("%d clean hardware probes", r.cleanProbes))
			}
		} else {
			r.cleanProbes = 0
		}
	default:
		out = odAct
		r.stats.PeriodsOD++
		if !droppedPeriod {
			r.cleanTelem++
			if r.cleanTelem >= r.rc.PromoteAfter {
				r.promote(fmt.Sprintf("%d clean telemetry periods", r.cleanTelem))
			}
		} else {
			r.cleanTelem = 0
		}
	}

	// Persistent telemetry starvation demotes regardless of the current
	// RL rung: both RL implementations encode state from telemetry, so
	// flying them on guesses is worse than ondemand's one-threshold rule
	// on the last good sample.
	if r.rung < 2 {
		if droppedPeriod {
			r.consecTelem++
			if r.consecTelem >= r.rc.DemoteAfter {
				r.demote(fmt.Sprintf("%d consecutive telemetry drops", r.consecTelem))
			}
		} else {
			r.consecTelem = 0
		}
	}

	for i, o := range fobs {
		r.prevDemand[i] = o.DemandRatio
	}
	return out
}

func (r *Resilient) demote(reason string) {
	if r.rung >= 2 {
		return
	}
	r.rung++
	r.stats.Demotions++
	r.event("demoted %s -> %s: %s", rungNames[r.rung-1], rungNames[r.rung], reason)
	r.consecHWFaults, r.consecTelem = 0, 0
	r.cleanProbes, r.cleanTelem = 0, 0
}

func (r *Resilient) promote(reason string) {
	if r.rung <= 0 {
		return
	}
	r.rung--
	r.stats.Promotions++
	r.event("promoted %s -> %s: %s", rungNames[r.rung+1], rungNames[r.rung], reason)
	r.consecHWFaults, r.consecTelem = 0, 0
	r.cleanProbes, r.cleanTelem = 0, 0
}

// Reset implements sim.Governor: the hardware stack re-initializes from
// the trained snapshot on the next Decide and the health ladder returns
// to the hardware rung. The shadow software policy is a frozen trained
// artifact and is left untouched (resetting it would erase the training,
// not return to "initial state").
func (r *Resilient) Reset() {
	r.drivers = nil
	r.prevDemand = nil
	r.rung = 0
	r.consecHWFaults, r.consecTelem = 0, 0
	r.cleanProbes, r.cleanTelem = 0, 0
	r.stats = ResilientStats{}
	if r.filter != nil {
		r.filter.Reset()
	}
	r.od.Reset()
}
