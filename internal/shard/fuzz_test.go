package shard

import (
	"fmt"
	"testing"
)

// FuzzRingRoute drives the ring through an arbitrary membership history
// and routes keys after every operation, checking the safety properties
// the router depends on: routing never panics, a non-empty ring always
// returns a live member, an empty ring never fabricates one, and two
// rings fed the same history agree on every answer (the cross-process
// determinism contract).
func FuzzRingRoute(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x83, 0x04}, uint64(1), uint64(42))
	f.Add([]byte{0x00, 0x80, 0x00, 0x01, 0x81}, uint64(99), uint64(7))
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, ops []byte, key uint64, seed uint64) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		a := NewRing(seed, 16)
		b := NewRing(seed, 16)
		for i, op := range ops {
			name := fmt.Sprintf("m%d", op&0x3f)
			if op&0x80 != 0 {
				if a.Remove(name) != b.Remove(name) {
					t.Fatalf("op %d: remove(%s) diverged", i, name)
				}
			} else {
				if a.Add(name) != b.Add(name) {
					t.Fatalf("op %d: add(%s) diverged", i, name)
				}
			}
			k := key + uint64(i)*0x9e3779b9
			oa, oka := a.Owner(k)
			ob, okb := b.Owner(k)
			if oka != okb || oa != ob {
				t.Fatalf("op %d: owner(%d) diverged: %q/%v vs %q/%v", i, k, oa, oka, ob, okb)
			}
			if a.Size() == 0 {
				if oka {
					t.Fatalf("op %d: empty ring returned owner %q", i, oa)
				}
				continue
			}
			if !oka {
				t.Fatalf("op %d: non-empty ring (%d members) returned no owner", i, a.Size())
			}
			if !a.Contains(oa) {
				t.Fatalf("op %d: owner %q is not a live member", i, oa)
			}
		}
	})
}
