// Fleet: N in-process pmserve shards behind loopback listeners, every
// replica hydrated from ONE checkpoint encoding of the source model —
// the same encode → decode path a production shard takes when it loads
// the published checkpoint, so the differential tests exercise the codec,
// not just pointer sharing. Shards are named "s0".."sN-1"; killed shards
// leave their slot so a later AddShard mints a fresh name.
package shard

import (
	"bytes"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"

	"rlpm/internal/core"
	"rlpm/internal/serve"
)

// fleetShard is one running replica and its listeners.
type fleetShard struct {
	spec    ShardSpec
	srv     *serve.Server
	binLn   net.Listener
	httpSrv *httptest.Server
}

// Fleet owns N shard replicas for tests and benchmarks.
type Fleet struct {
	cfg  serve.Config
	ckpt []byte // the one checkpoint encoding every replica hydrates from
	mcfg core.Config

	mu     sync.Mutex
	shards map[string]*fleetShard
	next   int
	closed bool
}

// NewFleet encodes model once and starts n replicas hydrated from that
// encoding. cfg applies to every shard; cfg.Epoch seeds the first shard's
// epoch and subsequent shards (including later AddShard calls) get
// distinct epochs so cross-shard handle confusion is structurally
// impossible.
func NewFleet(model *serve.Model, n int, cfg serve.Config) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: fleet needs at least 1 shard, got %d", n)
	}
	var buf bytes.Buffer
	if err := model.Snapshot().EncodeCheckpoint(&buf); err != nil {
		return nil, fmt.Errorf("shard: encoding fleet checkpoint: %w", err)
	}
	f := &Fleet{
		cfg:    cfg,
		ckpt:   buf.Bytes(),
		mcfg:   model.Config(),
		shards: make(map[string]*fleetShard, n),
	}
	for i := 0; i < n; i++ {
		if _, err := f.AddShard(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// AddShard starts one more replica (fresh name, fresh epoch) and returns
// its spec — what the router needs to join it to the ring.
func (f *Fleet) AddShard() (ShardSpec, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ShardSpec{}, serve.ErrServerClosed
	}
	f.next++
	idx := f.next
	f.mu.Unlock()

	snap, err := core.DecodeCheckpoint(bytes.NewReader(f.ckpt))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard: hydrating replica: %w", err)
	}
	model, err := serve.NewModel(f.mcfg, snap)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard: replica model: %w", err)
	}
	cfg := f.cfg
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	cfg.Epoch += uint32(idx - 1)
	srv, err := serve.New(model, nil, cfg)
	if err != nil {
		return ShardSpec{}, err
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return ShardSpec{}, err
	}
	go srv.ServeBin(binLn)
	httpSrv := httptest.NewServer(srv.Handler())

	sh := &fleetShard{
		spec: ShardSpec{
			Name:     fmt.Sprintf("s%d", idx-1),
			BinAddr:  binLn.Addr().String(),
			HTTPAddr: httpSrv.Listener.Addr().String(),
		},
		srv:     srv,
		binLn:   binLn,
		httpSrv: httpSrv,
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		stopFleetShard(sh)
		return ShardSpec{}, serve.ErrServerClosed
	}
	f.shards[sh.spec.Name] = sh
	f.mu.Unlock()
	return sh.spec, nil
}

// Specs returns the live shards' specs sorted by name.
func (f *Fleet) Specs() []ShardSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	specs := make([]ShardSpec, 0, len(f.shards))
	for _, sh := range f.shards {
		specs = append(specs, sh.spec)
	}
	sortSpecs(specs)
	return specs
}

func sortSpecs(specs []ShardSpec) {
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0 && specs[j].Name < specs[j-1].Name; j-- {
			specs[j], specs[j-1] = specs[j-1], specs[j]
		}
	}
}

// Server returns a live shard's server (tests poke shard-side state).
func (f *Fleet) Server(name string) *serve.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	if sh, ok := f.shards[name]; ok {
		return sh.srv
	}
	return nil
}

func (f *Fleet) take(name string) *fleetShard {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh, ok := f.shards[name]
	if !ok {
		return nil
	}
	delete(f.shards, name)
	return sh
}

// KillShard tears a shard down abruptly — listeners and server die,
// in-flight calls fail. The chaos flavor of shard loss.
func (f *Fleet) KillShard(name string) error {
	sh := f.take(name)
	if sh == nil {
		return fmt.Errorf("shard: %q not in fleet", name)
	}
	stopFleetShard(sh)
	return nil
}

// StopShard is the graceful flavor: used after the router already removed
// the shard from the ring, so no new forwards arrive while it drains.
func (f *Fleet) StopShard(name string) error {
	return f.KillShard(name) // loopback shards have nothing buffered worth a drain grace
}

func stopFleetShard(sh *fleetShard) {
	sh.srv.Close()
	sh.binLn.Close()
	sh.httpSrv.CloseClientConnections()
	sh.httpSrv.Close()
}

// Close stops every shard.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	shards := make([]*fleetShard, 0, len(f.shards))
	for _, sh := range f.shards {
		shards = append(shards, sh)
	}
	f.shards = make(map[string]*fleetShard)
	f.mu.Unlock()
	for _, sh := range shards {
		stopFleetShard(sh)
	}
}
