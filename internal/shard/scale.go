// Scaling harness: RunScale measures the fleet's decide throughput at a
// sequence of shard counts, producing the BENCH_pr9 scaling curve. For
// each point it stands up an N-shard checkpoint-hydrated fleet plus a
// router, then drives the load generator's device fleet at the shards
// DIRECTLY over the binary protocol — each device placed by the same
// consistent-hash ring the router uses, so placement agrees without the
// router in the data path (the deployment shape: the router handles
// placement, resume, and admin; steady-state decide traffic goes
// shard-direct). The router still fronts the control plane: health,
// placement, and the merged fleet /metrics each point records.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"rlpm/internal/serve"
)

// ScaleConfig parameterizes a scaling-curve run.
type ScaleConfig struct {
	// ShardCounts lists the fleet sizes to measure (default [1, 2, 4]).
	ShardCounts []int
	// Devices is the simulated device count per point (default 100_000).
	Devices int
	// Workers bounds the load generator's goroutines (default 64).
	Workers int
	// Duration is the measured wall-clock window per point (default 10s).
	Duration time.Duration
	// Scenario, Seed, Epsilon, RewardEvery, PeriodsPerFrame pass through
	// to the load generator.
	Scenario        string
	Seed            uint64
	Epsilon         float64
	RewardEvery     int
	PeriodsPerFrame int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4}
	}
	if c.Devices == 0 {
		c.Devices = 100_000
	}
	if c.Workers == 0 {
		c.Workers = 64
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ScalePoint is one shard count's measurement.
type ScalePoint struct {
	Shards int               `json:"shards"`
	Report *serve.LoadReport `json:"report"`
	// Fleet is the router's merged view scraped after the run: per-shard
	// decide counts prove every shard carried traffic.
	Fleet *RouterMetrics `json:"fleet,omitempty"`
}

// ScaleResult is the full curve.
type ScaleResult struct {
	Devices int          `json:"devices"`
	Workers int          `json:"workers"`
	Points  []ScalePoint `json:"points"`
}

// RunScale measures one point per shard count.
func RunScale(ctx context.Context, model *serve.Model, cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{Devices: cfg.Devices, Workers: cfg.Workers}
	for _, n := range cfg.ShardCounts {
		pt, err := runScalePoint(ctx, model, cfg, n)
		if err != nil {
			return res, fmt.Errorf("shard: scale point n=%d: %w", n, err)
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func runScalePoint(ctx context.Context, model *serve.Model, cfg ScaleConfig, n int) (*ScalePoint, error) {
	fleet, err := NewFleet(model, n, serve.Config{})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	router, err := NewRouter(RouterConfig{RingSeed: cfg.Seed}, fleet.Specs())
	if err != nil {
		return nil, err
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// The placement function: the router's ring, rebuilt locally from the
	// same (seed, member set) — determinism is the contract, so the load
	// generator and router agree on every device without coordination.
	ring := NewRing(cfg.Seed, 0)
	specByName := make(map[string]ShardSpec, n)
	for _, sp := range fleet.Specs() {
		ring.Add(sp.Name)
		specByName[sp.Name] = sp
	}
	addrs := make([]string, 0, n)
	for _, name := range ring.Members() {
		addrs = append(addrs, specByName[name].BinAddr)
	}

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:  front.URL,
		Proto:    "bin",
		BinAddrs: addrs,
		ShardFor: func(seed uint64) int {
			i, _ := ring.OwnerIndex(seed)
			return i
		},
		Devices:         cfg.Devices,
		Workers:         cfg.Workers,
		Duration:        cfg.Duration,
		Scenario:        cfg.Scenario,
		Seed:            cfg.Seed,
		Epsilon:         cfg.Epsilon,
		RewardEvery:     cfg.RewardEvery,
		PeriodsPerFrame: cfg.PeriodsPerFrame,
	})
	if err != nil {
		return nil, err
	}

	// Scrape the merged fleet view through the router.
	fm, err := scrapeRouterMetrics(ctx, front.URL)
	if err != nil {
		return nil, err
	}
	return &ScalePoint{Shards: n, Report: rep, Fleet: fm}, nil
}

// scrapeRouterMetrics GETs the router's JSON /metrics rollup.
func scrapeRouterMetrics(ctx context.Context, baseURL string) (*RouterMetrics, error) {
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: router metrics status %d", resp.StatusCode)
	}
	var m RouterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
