// Rebalance harness: the executable proof of the sharded tier's handoff
// story. RunRebalance drives a fleet of simulated devices through the
// router at an N-shard fleet — optionally through a fault-injecting proxy,
// optionally removing (or killing) a shard and adding a fresh one mid-run
// — and holds the run to the single-process invariants:
//
//   - completeness: every device acks exactly Periods decisions — a
//     handoff may cost a resume round trip, never a decision;
//   - determinism: each device's decision sequence is byte-identical to a
//     fault-free single-process oracle over the same model, so sharding,
//     checkpoint hydration, routing, and handoff changed nothing;
//   - hygiene: goroutines and heap settle back to baseline.
package shard

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/chaos"
	"rlpm/internal/serve"
	"rlpm/internal/workload"
)

// RebalanceConfig parameterizes a sharded differential run.
type RebalanceConfig struct {
	// Proto selects the device transport through the router: "bin"
	// (default) or "json".
	Proto string
	// Devices is the concurrent device count (default 12).
	Devices int
	// Periods is the decide count per device (default 200).
	Periods int
	// Seed derives the ring, fault schedule, and per-device streams
	// (default 1).
	Seed uint64
	// Scenario is the workload every device runs (default "gaming").
	Scenario string
	// Epsilon is the per-session exploration rate — non-zero makes
	// decisions stateful, so any handoff bug diverges the sequence.
	Epsilon float64
	// RewardEvery posts a reward every that many periods (default 25;
	// negative disables).
	RewardEvery int
	// Shards is the initial shard count (default 2).
	Shards int
	// Rebalance, when true, removes the most-loaded shard once a third of
	// the fleet's decisions are acked and adds a fresh shard at two
	// thirds — one seeded remove and one seeded add per run.
	Rebalance bool
	// Kill makes the remove abrupt: the shard dies first (in-flight calls
	// fail), then leaves the ring. False drains gracefully: the ring drops
	// it before it stops.
	Kill bool
	// Faults is an optional fault schedule injected between devices and
	// the router. Its Seed defaults to Seed.
	Faults chaos.Config
	// SessionTTL / QueueDeadline pass through to every shard's config.
	SessionTTL    time.Duration
	QueueDeadline time.Duration
	// CallTimeout is the device per-attempt deadline (default 2s);
	// RetryBudget the total retry window per call (default 30s).
	CallTimeout time.Duration
	RetryBudget time.Duration
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Proto == "" {
		c.Proto = "bin"
	}
	if c.Devices == 0 {
		c.Devices = 12
	}
	if c.Periods == 0 {
		c.Periods = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.RewardEvery == 0 {
		c.RewardEvery = 25
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 30 * time.Second
	}
	return c
}

// Validate checks the configuration.
func (c RebalanceConfig) Validate() error {
	if c.Proto != "bin" && c.Proto != "json" {
		return fmt.Errorf("shard: unknown rebalance proto %q (want bin or json)", c.Proto)
	}
	if c.Devices < 1 || c.Periods < 1 {
		return fmt.Errorf("shard: rebalance needs at least one device and period, got %d/%d", c.Devices, c.Periods)
	}
	if c.Shards < 1 {
		return fmt.Errorf("shard: rebalance needs at least one shard, got %d", c.Shards)
	}
	if c.Rebalance && c.Shards < 2 {
		return fmt.Errorf("shard: rebalancing needs at least two shards, got %d", c.Shards)
	}
	return nil
}

// RebalanceReport is the evidence a run collects.
type RebalanceReport struct {
	Proto     string  `json:"proto"`
	Shards    int     `json:"shards"`
	Devices   int     `json:"devices"`
	Periods   int     `json:"periods"`
	DurationS float64 `json:"duration_s"`
	Decisions uint64  `json:"decisions"` // acked; must equal Devices×Periods

	Dials   uint64 `json:"dials"`
	Retries uint64 `json:"retries"`
	Resumes uint64 `json:"resumes"` // client-side session resumes (handoffs ridden out)

	Moved         uint64 `json:"moved"`          // router sessions invalidated by membership change
	RouterResumes uint64 `json:"router_resumes"` // resumes the router placed
	ForwardErrors uint64 `json:"forward_errors"`

	Removed string `json:"removed,omitempty"` // victim shard of the rebalance
	Added   string `json:"added,omitempty"`   // shard joined mid-run

	Mismatches int `json:"mismatches"`

	GoroutinesStart int    `json:"goroutines_start"`
	GoroutinesEnd   int    `json:"goroutines_end"`
	HeapAllocStart  uint64 `json:"heap_alloc_start"`
	HeapAllocEnd    uint64 `json:"heap_alloc_end"`
}

// devSession is the device-facing session face both transports share.
type devSession interface {
	Decide(ctx context.Context, obs []serve.Observation) ([]int, error)
	Reward(ctx context.Context, r float64) (serve.SessionStats, error)
	Close(ctx context.Context) (serve.SessionStats, error)
}

// rebalancePeriodS matches the chaos harness's simulated control period.
const rebalancePeriodS = 0.05

// RunRebalance executes one sharded differential run against model.
func RunRebalance(ctx context.Context, model *serve.Model, cfg RebalanceConfig) (*RebalanceReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := workload.ByName(cfg.Scenario); err != nil {
		return nil, err
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep := &RebalanceReport{
		Proto: cfg.Proto, Shards: cfg.Shards, Devices: cfg.Devices, Periods: cfg.Periods,
		GoroutinesStart: runtime.NumGoroutine(), HeapAllocStart: ms.HeapAlloc,
	}
	start := time.Now()

	// The fleet: N checkpoint-hydrated replicas.
	fleet, err := NewFleet(model, cfg.Shards, serve.Config{
		SessionTTL:    cfg.SessionTTL,
		QueueDeadline: cfg.QueueDeadline,
	})
	if err != nil {
		return rep, err
	}
	defer fleet.Close()

	// The router, fronting the fleet on the device's chosen protocol.
	router, err := NewRouter(RouterConfig{
		RingSeed:    cfg.Seed,
		CallTimeout: cfg.CallTimeout,
	}, fleet.Specs())
	if err != nil {
		return rep, err
	}
	defer router.Close()

	frontLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	frontAddr := frontLn.Addr().String()
	frontDone := make(chan error, 1)
	var hs *http.Server
	if cfg.Proto == "bin" {
		go func() { frontDone <- router.ServeBin(frontLn) }()
	} else {
		hs = &http.Server{Handler: router.Handler()}
		go func() { frontDone <- hs.Serve(frontLn) }()
	}
	defer func() {
		if hs != nil {
			hs.Close()
		}
		frontLn.Close()
		<-frontDone
	}()

	// Optional fault proxy between devices and the router.
	deviceAddr := frontAddr
	var proxy *chaos.Proxy
	if cfg.Faults != (chaos.Config{}) {
		faults := cfg.Faults
		if faults.Seed == 0 {
			faults.Seed = cfg.Seed
		}
		proxy, err = chaos.NewProxy(frontAddr, faults)
		if err != nil {
			return rep, err
		}
		defer proxy.Close()
		deviceAddr = proxy.Addr()
	}

	// Clients.
	var bc *serve.BinClient
	var hc *serve.Client
	var open func(context.Context, serve.SessionOptions) (devSession, error)
	if cfg.Proto == "bin" {
		bc = serve.NewBinClient(deviceAddr)
		bc.SetCallTimeout(cfg.CallTimeout)
		bc.SetRetryBudget(cfg.RetryBudget)
		defer bc.Close()
		open = func(ctx context.Context, o serve.SessionOptions) (devSession, error) { return bc.OpenSession(ctx, o) }
	} else {
		hc = serve.NewClient("http://" + deviceAddr)
		hc.SetCallTimeout(cfg.CallTimeout)
		hc.SetRetryBudget(cfg.RetryBudget)
		defer hc.CloseIdleConnections()
		open = func(ctx context.Context, o serve.SessionOptions) (devSession, error) { return hc.CreateSession(ctx, o) }
	}

	total := uint64(cfg.Devices) * uint64(cfg.Periods)
	gate1At, gate2At := total/3, 2*total/3
	var acked atomic.Uint64

	// Rebalance controller: remove the most-loaded shard at a third of the
	// run, add a fresh shard at two thirds. Devices that crossed a
	// threshold hold before their next decide until the membership change
	// lands, so both changes are guaranteed to happen mid-stream with
	// sessions live on the moving keyspace.
	gate1, gate2 := make(chan struct{}), make(chan struct{})
	ctrlDone := make(chan error, 1)
	if !cfg.Rebalance {
		close(gate1)
		close(gate2)
		ctrlDone <- nil
	} else {
		go func() {
			fail := func(err error) {
				close(gate1)
				close(gate2)
				ctrlDone <- err
			}
			waitFor := func(n uint64) error {
				guard := time.Now().Add(60 * time.Second)
				for acked.Load() < n {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					if time.Now().After(guard) {
						return fmt.Errorf("shard: fleet stalled before rebalance point (%d/%d acked)", acked.Load(), n)
					}
					time.Sleep(2 * time.Millisecond)
				}
				return nil
			}
			if err := waitFor(gate1At); err != nil {
				fail(err)
				return
			}
			// Victim: most live sessions, name-ordered tie-break — fully
			// deterministic for a given seed and schedule.
			loads := router.shardLoads()
			names := make([]string, 0, len(loads))
			for n := range loads {
				names = append(names, n)
			}
			sort.Strings(names)
			victim := names[0]
			for _, n := range names {
				if loads[n] > loads[victim] {
					victim = n
				}
			}
			rep.Removed = victim
			if cfg.Kill {
				// Abrupt: the shard dies with sessions live, then leaves the
				// ring. Devices see forward failures until the remove lands.
				if err := fleet.KillShard(victim); err != nil {
					fail(err)
					return
				}
				if err := router.RemoveShard(victim); err != nil {
					fail(err)
					return
				}
			} else {
				// Graceful: leave the ring first (handoff signals fire, no
				// new forwards), then stop the drained shard.
				if err := router.RemoveShard(victim); err != nil {
					fail(err)
					return
				}
				if err := fleet.StopShard(victim); err != nil {
					fail(err)
					return
				}
			}
			close(gate1)
			if err := waitFor(gate2At); err != nil {
				close(gate2)
				ctrlDone <- err
				return
			}
			spec, err := fleet.AddShard()
			if err != nil {
				close(gate2)
				ctrlDone <- err
				return
			}
			if err := router.AddShard(spec); err != nil {
				close(gate2)
				ctrlDone <- err
				return
			}
			rep.Added = spec.Name
			close(gate2)
			ctrlDone <- nil
		}()
	}

	// The device fleet.
	sequences := make([][]int, cfg.Devices)
	devErrs := make([]error, cfg.Devices)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Devices; d++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			seed := serve.DeviceSeed(cfg.Seed, idx)
			sess, err := open(ctx, serve.SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
			if err != nil {
				devErrs[idx] = fmt.Errorf("device %d open: %w", idx, err)
				return
			}
			decide := func(_ int, obs []serve.Observation) ([]int, error) {
				lv, err := sess.Decide(ctx, obs)
				if err == nil {
					a := acked.Add(1)
					if a >= gate1At {
						select {
						case <-gate1:
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
					if a >= gate2At {
						select {
						case <-gate2:
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
				}
				return lv, err
			}
			reward := func(r float64) error {
				_, err := sess.Reward(ctx, r)
				return err
			}
			sequences[idx], err = serve.RunDeviceSim(serve.DeviceSimConfig{
				Scenario:    cfg.Scenario,
				Periods:     cfg.Periods,
				Seed:        seed,
				PeriodS:     rebalancePeriodS,
				RewardEvery: cfg.RewardEvery,
			}, decide, reward)
			if err != nil {
				devErrs[idx] = fmt.Errorf("device %d: %w", idx, err)
				return
			}
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := sess.Close(cctx); err != nil {
				devErrs[idx] = fmt.Errorf("device %d close: %w", idx, err)
			}
		}(d)
	}
	wg.Wait()
	ctrlErr := <-ctrlDone

	rep.Decisions = acked.Load()
	rep.DurationS = time.Since(start).Seconds()
	rep.Moved = router.movedSessions.Load()
	rep.RouterResumes = router.resumesFwd.Load()
	rep.ForwardErrors = router.forwardErrors.Load()
	if bc != nil {
		st := bc.TransportStats()
		rep.Dials, rep.Retries, rep.Resumes = st.Dials, st.Retries, st.Resumes
	}
	if hc != nil {
		st := hc.TransportStats()
		rep.Retries, rep.Resumes = st.Retries, st.Resumes
	}

	// Fault-free single-process oracle over the same model: the sharded
	// fleet must be byte-identical, device for device.
	if err := func() error {
		oracle, err := serve.New(model, nil, serve.Config{})
		if err != nil {
			return err
		}
		defer oracle.Close()
		for idx := 0; idx < cfg.Devices; idx++ {
			if devErrs[idx] != nil {
				continue
			}
			seed := serve.DeviceSeed(cfg.Seed, idx)
			sess, err := oracle.CreateSession(serve.SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
			if err != nil {
				return err
			}
			want, err := serve.RunDeviceSim(serve.DeviceSimConfig{
				Scenario:    cfg.Scenario,
				Periods:     cfg.Periods,
				Seed:        seed,
				PeriodS:     rebalancePeriodS,
				RewardEvery: cfg.RewardEvery,
			}, func(_ int, obs []serve.Observation) ([]int, error) {
				return sess.Decide(obs)
			}, nil)
			if err != nil {
				return fmt.Errorf("oracle device %d: %w", idx, err)
			}
			if !equalSeq(sequences[idx], want) {
				rep.Mismatches++
			}
		}
		return nil
	}(); err != nil {
		return rep, err
	}

	// Teardown before hygiene so the front/router/fleet goroutines count
	// against the baseline.
	if proxy != nil {
		proxy.Close()
	}
	if bc != nil {
		bc.Close()
	}
	if hc != nil {
		hc.CloseIdleConnections()
	}
	if hs != nil {
		hs.Close()
		hs = nil
	}
	frontLn.Close()
	router.Close()
	fleet.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > rep.GoroutinesStart && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	rep.GoroutinesEnd = runtime.NumGoroutine()
	rep.HeapAllocEnd = ms.HeapAlloc

	switch {
	case ctrlErr != nil:
		return rep, fmt.Errorf("shard: rebalance controller: %w", ctrlErr)
	case firstDevErr(devErrs) != nil:
		return rep, fmt.Errorf("shard: device failed: %w", firstDevErr(devErrs))
	case rep.Decisions != total:
		return rep, fmt.Errorf("shard: acked %d decisions, want %d (lost or duplicated)", rep.Decisions, total)
	case rep.Mismatches > 0:
		return rep, fmt.Errorf("shard: %d device(s) diverged from the single-process oracle", rep.Mismatches)
	case cfg.Rebalance && rep.Moved == 0:
		return rep, fmt.Errorf("shard: rebalance moved no sessions — the handoff path was not exercised")
	case rep.GoroutinesEnd > rep.GoroutinesStart:
		return rep, fmt.Errorf("shard: leaked goroutines: %d before, %d after", rep.GoroutinesStart, rep.GoroutinesEnd)
	case rep.HeapAllocEnd > rep.HeapAllocStart+256<<20:
		return rep, fmt.Errorf("shard: heap grew %d bytes", rep.HeapAllocEnd-rep.HeapAllocStart)
	}
	return rep, nil
}

func equalSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstDevErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
