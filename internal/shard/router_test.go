package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rlpm/internal/core"
	"rlpm/internal/rng"
	"rlpm/internal/serve"
)

func testSnapshot(t testing.TB, levels ...int) (core.Config, core.Snapshot) {
	t.Helper()
	cfg := core.DefaultConfig()
	snap := core.Snapshot{State: cfg.State}
	r := rng.New(42)
	for _, n := range levels {
		states := cfg.State.States(n)
		table := make([][]float64, states)
		for s := range table {
			row := make([]float64, n)
			for a := range row {
				row[a] = r.Float64()*2 - 1
			}
			table[s] = row
		}
		snap.Tables = append(snap.Tables, table)
	}
	return cfg, snap
}

func testModel(t testing.TB, levels ...int) *serve.Model {
	t.Helper()
	cfg, snap := testSnapshot(t, levels...)
	m, err := serve.NewModel(cfg, snap)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// testFleetRouter stands up an n-shard fleet plus a router with a binary
// front, returning the front address.
func testFleetRouter(t *testing.T, model *serve.Model, n int, ringSeed uint64) (*Fleet, *Router, string) {
	t.Helper()
	fleet, err := NewFleet(model, n, serve.Config{})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	t.Cleanup(fleet.Close)
	router, err := NewRouter(RouterConfig{RingSeed: ringSeed}, fleet.Specs())
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(router.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- router.ServeBin(ln) }()
	t.Cleanup(func() {
		router.Close()
		ln.Close()
		<-done
	})
	return fleet, router, ln.Addr().String()
}

// testObs builds one valid observation frame for the model.
func testObs(m *serve.Model) []serve.Observation {
	obs := make([]serve.Observation, m.Clusters())
	for c := range obs {
		obs[c] = serve.Observation{Utilization: 0.5, DemandRatio: 0.8, QoS: 1, ClusterQoS: 1}
	}
	return obs
}

// TestRouterPlacementMatchesRing: sessions land on the shard the ring
// names for their seed — the router adds no placement policy of its own.
func TestRouterPlacementMatchesRing(t *testing.T) {
	model := testModel(t, 6, 4)
	_, router, addr := testFleetRouter(t, model, 3, 7)
	bc := serve.NewBinClient(addr)
	defer bc.Close()
	ctx := context.Background()

	ring := NewRing(7, 0)
	for _, sp := range router.Shards() {
		ring.Add(sp.Name)
	}
	want := map[string]int{}
	for d := 0; d < 24; d++ {
		seed := serve.DeviceSeed(3, d)
		owner, _ := ring.Owner(seed)
		want[owner]++
		if _, err := bc.OpenSession(ctx, serve.SessionOptions{Seed: seed}); err != nil {
			t.Fatalf("open %d: %v", d, err)
		}
	}
	got := router.shardLoads()
	for name, n := range want {
		if got[name] != n {
			t.Fatalf("shard %s holds %d sessions, ring places %d (loads %v)", name, got[name], n, got)
		}
	}
}

// TestRouterBinSessionLifecycle drives a full device life through the
// binary front: create, sequenced decides, reward, close — and verifies
// the decisions match a direct session against the same model.
func TestRouterBinSessionLifecycle(t *testing.T) {
	model := testModel(t, 8, 6)
	_, _, addr := testFleetRouter(t, model, 2, 11)
	bc := serve.NewBinClient(addr)
	defer bc.Close()
	ctx := context.Background()

	sess, err := bc.OpenSession(ctx, serve.SessionOptions{Epsilon: 0.3, Seed: 99})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got := len(sess.Levels); got != model.Clusters() {
		t.Fatalf("session advertises %d clusters, want %d", got, model.Clusters())
	}
	var gotSeq []int
	for i := 0; i < 20; i++ {
		lv, err := sess.Decide(ctx, testObs(model))
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		gotSeq = append(gotSeq, lv...)
	}
	if _, err := sess.Reward(ctx, -1.5); err != nil {
		t.Fatalf("reward: %v", err)
	}
	st, err := sess.Close(ctx)
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if st.Decisions != 20 || st.Rewards != 1 {
		t.Fatalf("ledger %+v, want 20 decisions / 1 reward", st)
	}

	// Direct oracle: same options, same observation stream, no router.
	direct, err := serve.New(model, nil, serve.Config{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer direct.Close()
	osess, err := direct.CreateSession(serve.SessionOptions{Epsilon: 0.3, Seed: 99})
	if err != nil {
		t.Fatalf("oracle session: %v", err)
	}
	var wantSeq []int
	for i := 0; i < 20; i++ {
		lv, err := osess.Decide(testObs(model))
		if err != nil {
			t.Fatalf("oracle decide %d: %v", i, err)
		}
		wantSeq = append(wantSeq, lv...)
	}
	if !equalSeq(gotSeq, wantSeq) {
		t.Fatalf("routed decisions diverge from direct session:\n got %v\nwant %v", gotSeq[:8], wantSeq[:8])
	}
}

// TestRouterHandoffOnRemove: removing the shard a session lives on makes
// the device's next decide resume transparently, with no decision lost.
func TestRouterHandoffOnRemove(t *testing.T) {
	model := testModel(t, 6, 4)
	_, router, addr := testFleetRouter(t, model, 3, 5)
	bc := serve.NewBinClient(addr)
	defer bc.Close()
	ctx := context.Background()

	seed := serve.DeviceSeed(1, 0)
	sess, err := bc.OpenSession(ctx, serve.SessionOptions{Epsilon: 0.25, Seed: seed})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var got []int
	for i := 0; i < 10; i++ {
		lv, err := sess.Decide(ctx, testObs(model))
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		got = append(got, lv...)
	}

	// Evict the session's owner from the ring (keep the shard process
	// alive: graceful rebalance removes from routing first).
	ring := NewRing(5, 0)
	for _, sp := range router.Shards() {
		ring.Add(sp.Name)
	}
	owner, _ := ring.Owner(seed)
	if err := router.RemoveShard(owner); err != nil {
		t.Fatalf("remove %s: %v", owner, err)
	}
	if moved := router.movedSessions.Load(); moved == 0 {
		t.Fatal("remove moved no sessions")
	}

	for i := 10; i < 20; i++ {
		lv, err := sess.Decide(ctx, testObs(model))
		if err != nil {
			t.Fatalf("decide %d after remove: %v", i, err)
		}
		got = append(got, lv...)
	}
	if st := bc.TransportStats(); st.Resumes == 0 {
		t.Fatal("handoff did not trigger a client resume")
	}

	// The full 20-decide sequence must match a never-interrupted oracle.
	direct, err := serve.New(model, nil, serve.Config{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer direct.Close()
	osess, err := direct.CreateSession(serve.SessionOptions{Epsilon: 0.25, Seed: seed})
	if err != nil {
		t.Fatalf("oracle session: %v", err)
	}
	var want []int
	for i := 0; i < 20; i++ {
		lv, err := osess.Decide(testObs(model))
		if err != nil {
			t.Fatalf("oracle decide %d: %v", i, err)
		}
		want = append(want, lv...)
	}
	if !equalSeq(got, want) {
		t.Fatalf("handoff changed decisions:\n got %v\nwant %v", got, want)
	}
	if _, err := sess.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestRouterHTTPFrontLifecycle drives the JSON face end to end with the
// resilient HTTP client.
func TestRouterHTTPFrontLifecycle(t *testing.T) {
	model := testModel(t, 6, 4)
	fleet, err := NewFleet(model, 2, serve.Config{})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	defer fleet.Close()
	router, err := NewRouter(RouterConfig{RingSeed: 3}, fleet.Specs())
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	hc := serve.NewClient(front.URL)
	defer hc.CloseIdleConnections()
	ctx := context.Background()
	sess, err := hc.CreateSession(ctx, serve.SessionOptions{Seed: 12})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sess.Decide(ctx, testObs(model)); err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
	}
	if _, err := sess.Reward(ctx, -0.5); err != nil {
		t.Fatalf("reward: %v", err)
	}
	st, err := sess.Close(ctx)
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if st.Decisions != 5 {
		t.Fatalf("ledger decisions %d, want 5", st.Decisions)
	}

	// /v1/ring publishes the placement contract.
	resp, err := http.Get(front.URL + "/v1/ring")
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	defer resp.Body.Close()
	var ringResp RingResponse
	if err := json.NewDecoder(resp.Body).Decode(&ringResp); err != nil {
		t.Fatalf("ring decode: %v", err)
	}
	if ringResp.Seed != 3 || len(ringResp.Shards) != 2 {
		t.Fatalf("ring response %+v", ringResp)
	}
}

// TestRouterScrapeMerge: the router's /metrics merges every shard's
// scraped registry and emits per-shard rollup series with nonzero decide
// counts on every shard that carried traffic.
func TestRouterScrapeMerge(t *testing.T) {
	model := testModel(t, 6, 4)
	_, router, addr := testFleetRouter(t, model, 2, 7)
	front := httptest.NewServer(router.Handler())
	defer front.Close()
	bc := serve.NewBinClient(addr)
	defer bc.Close()
	ctx := context.Background()

	// Open enough devices that both shards own sessions, decide on each.
	perShard := map[string]uint64{}
	ring := NewRing(7, 0)
	for _, sp := range router.Shards() {
		ring.Add(sp.Name)
	}
	for d := 0; d < 8; d++ {
		seed := serve.DeviceSeed(2, d)
		sess, err := bc.OpenSession(ctx, serve.SessionOptions{Seed: seed})
		if err != nil {
			t.Fatalf("open %d: %v", d, err)
		}
		for i := 0; i < 3; i++ {
			if _, err := sess.Decide(ctx, testObs(model)); err != nil {
				t.Fatalf("decide: %v", err)
			}
		}
		owner, _ := ring.Owner(seed)
		perShard[owner] += 3
	}
	if len(perShard) != 2 {
		t.Fatalf("test seeds landed on %d shards, want 2 (%v)", len(perShard), perShard)
	}

	// Text exposition: per-shard rollup plus merged fleet series.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	for {
		m, err := resp.Body.Read(body[n:])
		n += m
		if err != nil || m == 0 {
			break
		}
	}
	resp.Body.Close()
	text := string(body[:n])
	var fleetTotal uint64
	for name, want := range perShard {
		line := fmt.Sprintf("router_shard_decisions_total{shard=%q} %d", name, want)
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q", line)
		}
		fleetTotal += want
	}
	if !strings.Contains(text, fmt.Sprintf("serve_decisions_total %d", fleetTotal)) {
		t.Errorf("merged exposition missing fleet serve_decisions_total %d", fleetTotal)
	}
	if !strings.Contains(text, "router_sessions 8") {
		t.Errorf("router's own gauge missing from exposition")
	}

	// JSON rollup agrees.
	fm, err := scrapeRouterMetrics(ctx, front.URL)
	if err != nil {
		t.Fatalf("json metrics: %v", err)
	}
	if fm.Decisions != fleetTotal {
		t.Fatalf("json rollup decisions %d, want %d", fm.Decisions, fleetTotal)
	}
	if len(fm.PerShard) != 2 {
		t.Fatalf("json rollup has %d shards, want 2", len(fm.PerShard))
	}
	for _, st := range fm.PerShard {
		if !st.Up || st.Decisions != perShard[st.Name] {
			t.Fatalf("per-shard status %+v, want up with %d decisions", st, perShard[st.Name])
		}
	}
}

// TestMapForwardErr pins the error translation: overload (with its
// backoff hint), bad-seq, and bad-request pass through; session-scoped
// not-found becomes the resume signal; transport failures become
// retryable server-closed.
func TestMapForwardErr(t *testing.T) {
	hinted := &serve.BackoffError{
		Err:        fmt.Errorf("%w: queue full", serve.ErrOverloaded),
		RetryAfter: 40 * time.Millisecond,
	}
	if got := mapForwardErr(hinted, true); !errors.Is(got, serve.ErrOverloaded) {
		t.Fatalf("overload did not pass through: %v", got)
	} else {
		var be *serve.BackoffError
		if !errors.As(got, &be) || be.RetryAfter != 40*time.Millisecond {
			t.Fatalf("backoff hint lost across the router: %v", got)
		}
	}
	if got := mapForwardErr(serve.ErrBadSeq, true); !errors.Is(got, serve.ErrBadSeq) {
		t.Fatalf("bad seq rewritten: %v", got)
	}
	if got := mapForwardErr(serve.ErrBadRequest, true); !errors.Is(got, serve.ErrBadRequest) {
		t.Fatalf("bad request rewritten: %v", got)
	}
	for _, in := range []error{serve.ErrNoSession, serve.ErrUnknownSession, serve.ErrSessionClosed} {
		got := mapForwardErr(in, true)
		if !errors.Is(got, serve.ErrUnknownSession) {
			t.Fatalf("session-scoped %v did not become the resume signal: %v", in, got)
		}
	}
	if got := mapForwardErr(fmt.Errorf("dial tcp: connection refused"), true); !errors.Is(got, serve.ErrServerClosed) {
		t.Fatalf("transport failure not retryable: %v", got)
	}
	// Create path: a shard that forgot a session is not a resume signal
	// for a create — it is a failed forward.
	if got := mapForwardErr(serve.ErrNoSession, false); !errors.Is(got, serve.ErrServerClosed) {
		t.Fatalf("create-path session error should be retryable server-closed: %v", got)
	}
}

// TestRouterRejectsUnknownAndForeignEpochs: wrong-epoch and never-minted
// handles answer with the resumable unknown-session signal.
func TestRouterRejectsUnknownAndForeignEpochs(t *testing.T) {
	model := testModel(t, 6, 4)
	_, router, _ := testFleetRouter(t, model, 1, 1)
	c := &serve.BinCaller{}
	ctx := context.Background()
	if _, err := router.Decide(ctx, c, 999, router.Epoch(), 1, c.ObsToWire(testObs(model))); !errors.Is(err, serve.ErrUnknownSession) {
		t.Fatalf("unknown handle: %v", err)
	}
	if _, err := router.Decide(ctx, c, 1, router.Epoch()+1, 1, c.ObsToWire(testObs(model))); !errors.Is(err, serve.ErrUnknownSession) {
		t.Fatalf("foreign epoch: %v", err)
	}
}
