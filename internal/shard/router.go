// Router: the thin tier between device clients and N pmserve shards.
//
// The router speaks the serve wire protocols on both sides. Devices talk
// to it exactly as they would to a single pmserve — same HTTP routes, same
// binary frames, same error codes and backoff hints — and it forwards each
// call to the shard that owns the device's key on the consistent-hash
// ring. It mints its own session identities (handle + "r-..." id) in its
// own epoch, so shard-side handles never leak to devices and a shard
// restart or a rebalance is invisible to the client's addressing scheme.
//
// The router deliberately does NOT retry or resume: device clients already
// run the full mirror/resume machinery (BinSession, Client), and they are
// the only party holding the session's resume state. When the keyspace a
// session lives in moves to another shard — membership change — or the
// owning shard dies, the router answers ErrUnknownSession. That is the
// handoff signal: the device resumes (one round trip) and the router
// places the resumed session on the current owner. Decisions can neither
// be lost nor duplicated across the handoff because the resume carries the
// device's sequence number and the shard-side replay cache deduplicates
// the retried frame.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/obs"
	"rlpm/internal/serve"
	"rlpm/internal/wire"
)

// ShardSpec names one shard and its two listening addresses.
type ShardSpec struct {
	Name     string `json:"name"`
	BinAddr  string `json:"bin_addr"`
	HTTPAddr string `json:"http_addr,omitempty"`
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Epoch identifies this router incarnation to devices; defaults to 1.
	Epoch uint32
	// RingSeed seeds the consistent-hash ring. Every process that should
	// agree on placement (router, load generator) must share it.
	RingSeed uint64
	// VNodes is the ring's virtual-node count per shard; 0 selects
	// DefaultVNodes.
	VNodes int
	// CallTimeout bounds one forwarded call; defaults to 5s.
	CallTimeout time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 5 * time.Second
	}
	return c
}

// shardConn is one shard's spec plus the multiplexed client every forward
// to that shard shares.
type shardConn struct {
	spec ShardSpec
	bc   *serve.BinClient
}

// routerSession is the router's record of one device session: which shard
// holds it and under what shard-side identity. The router's own handle/id
// are the device-visible names.
type routerSession struct {
	mu          sync.Mutex
	handle      uint64 // router-minted, device-visible
	id          string
	key         uint64     // routing key: the device's seed
	shard       *shardConn // nil once moved
	shardHandle uint64
	shardEpoch  uint32
	moved       bool
	closed      bool
}

// Router owns the ring, the shard connections, and the session table. All
// fronts (binary, HTTP) funnel into the same core ops.
type Router struct {
	cfg RouterConfig

	mu         sync.Mutex
	ring       *Ring
	shards     map[string]*shardConn
	sessions   map[uint64]*routerSession
	byID       map[string]*routerSession
	nextHandle uint64
	closed     bool

	start   time.Time
	callers sync.Pool // *serve.BinCaller for the HTTP front and admin ops

	reg             *obs.Registry
	sessionsCreated *obs.Counter
	resumesFwd      *obs.Counter
	decideFrames    *obs.Counter
	rewardsFwd      *obs.Counter
	forwardErrors   *obs.Counter
	movedSessions   *obs.Counter
	scrapeErrors    *obs.Counter

	binMu    sync.Mutex
	binLns   map[net.Listener]struct{}
	binConns map[net.Conn]struct{}
	binWG    sync.WaitGroup
	binDown  atomic.Bool
}

// NewRouter builds a router over the initial shard set. Shard clients dial
// lazily on first forward, so a router can start before its shards listen.
func NewRouter(cfg RouterConfig, shards []ShardSpec) (*Router, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	r := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.RingSeed, cfg.VNodes),
		shards:   make(map[string]*shardConn, len(shards)),
		sessions: make(map[uint64]*routerSession),
		byID:     make(map[string]*routerSession),
		start:    time.Now(),
		reg:      reg,

		sessionsCreated: reg.NewCounter("router_sessions_created_total", "device sessions placed on shards"),
		resumesFwd:      reg.NewCounter("router_resumes_total", "resume requests forwarded (handoff completions)"),
		decideFrames:    reg.NewCounter("router_decide_frames_total", "decide frames forwarded"),
		rewardsFwd:      reg.NewCounter("router_rewards_total", "reward reports forwarded"),
		forwardErrors:   reg.NewCounter("router_forward_errors_total", "forwarded calls that failed"),
		movedSessions:   reg.NewCounter("router_sessions_moved_total", "sessions invalidated by membership change (handoff signals sent)"),
		scrapeErrors:    reg.NewCounter("router_scrape_errors_total", "fleet metric scrapes that failed"),
		binLns:          make(map[net.Listener]struct{}),
		binConns:        make(map[net.Conn]struct{}),
	}
	reg.NewGaugeFunc("router_shards", "shards in the ring", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.shards))
	})
	reg.NewGaugeFunc("router_sessions", "live routed sessions", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.sessions))
	})
	reg.NewGaugeFunc("router_uptime_seconds", "seconds since router start", func() float64 {
		s := time.Since(r.start).Seconds()
		if s < 0 {
			return 0
		}
		return s
	})
	for _, sp := range shards {
		if err := r.AddShard(sp); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// Registry exposes the router's own metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Epoch returns the router incarnation devices see.
func (r *Router) Epoch() uint32 { return r.cfg.Epoch }

func (r *Router) getCaller() *serve.BinCaller {
	if c, ok := r.callers.Get().(*serve.BinCaller); ok {
		return c
	}
	return &serve.BinCaller{}
}

func (r *Router) putCaller(c *serve.BinCaller) { r.callers.Put(c) }

// Shards returns the current shard specs in ring (sorted-name) order.
func (r *Router) Shards() []ShardSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	specs := make([]ShardSpec, 0, len(r.shards))
	for _, name := range r.ring.Members() {
		specs = append(specs, r.shards[name].spec)
	}
	return specs
}

// shardLoads reports live routed sessions per shard name — the rebalance
// harness uses it to pick a deterministic victim.
func (r *Router) shardLoads() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	loads := make(map[string]int, len(r.shards))
	for name := range r.shards {
		loads[name] = 0
	}
	for _, s := range r.sessions {
		s.mu.Lock()
		if s.shard != nil {
			loads[s.shard.spec.Name]++
		}
		s.mu.Unlock()
	}
	return loads
}

// movedRef is one session invalidated by a membership change, with the
// shard-side identity to clean up best-effort.
type movedRef struct {
	sc     *shardConn
	handle uint64
}

// markMovedLocked invalidates every session whose ring owner is no longer
// the shard it lives on. Caller holds r.mu. The sessions leave the table
// immediately — their next request answers ErrUnknownSession, the handoff
// signal — and the returned refs let the caller close the shard-side
// sessions best-effort (the shard may already be dead; its TTL reaper is
// the backstop).
func (r *Router) markMovedLocked() []movedRef {
	var moved []movedRef
	for h, s := range r.sessions {
		s.mu.Lock()
		var cur string
		if s.shard != nil {
			cur = s.shard.spec.Name
		}
		owner, ok := r.ring.Owner(s.key)
		if s.shard == nil || !ok || owner != cur {
			if s.shard != nil && s.shardHandle != 0 {
				moved = append(moved, movedRef{sc: s.shard, handle: s.shardHandle})
			}
			s.moved = true
			s.shard = nil
			delete(r.sessions, h)
			delete(r.byID, s.id)
			r.movedSessions.Add(1)
		}
		s.mu.Unlock()
	}
	return moved
}

// closeMovedAsync closes moved sessions on their old shards best-effort:
// bounded, fire-and-forget, failure is fine (dead shard, TTL reaps).
func (r *Router) closeMovedAsync(moved []movedRef) {
	if len(moved) == 0 {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c := r.getCaller()
		defer r.putCaller(c)
		for _, m := range moved {
			_, _ = c.Close(ctx, m.sc.bc, m.handle)
		}
	}()
}

// AddShard joins a shard to the ring. Sessions whose keyspace moves to the
// new shard are invalidated (their devices resume onto it).
func (r *Router) AddShard(spec ShardSpec) error {
	if spec.Name == "" || spec.BinAddr == "" {
		return fmt.Errorf("shard: spec needs name and bin addr, got %+v", spec)
	}
	bc := serve.NewBinClient(spec.BinAddr)
	bc.SetCallTimeout(r.cfg.CallTimeout)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		bc.Close()
		return serve.ErrServerClosed
	}
	if _, dup := r.shards[spec.Name]; dup {
		r.mu.Unlock()
		bc.Close()
		return fmt.Errorf("shard: %q already in the ring", spec.Name)
	}
	r.shards[spec.Name] = &shardConn{spec: spec, bc: bc}
	r.ring.Add(spec.Name)
	moved := r.markMovedLocked()
	r.mu.Unlock()
	r.closeMovedAsync(moved)
	return nil
}

// RemoveShard drops a shard from the ring. Its sessions are invalidated;
// their devices resume onto the surviving owners of their keys.
func (r *Router) RemoveShard(name string) error {
	r.mu.Lock()
	sc, ok := r.shards[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("shard: %q not in the ring", name)
	}
	delete(r.shards, name)
	r.ring.Remove(name)
	moved := r.markMovedLocked()
	r.mu.Unlock()
	// Best-effort close on the removed shard only if it is being drained
	// gracefully (it may be dead — calls fail fast and that is fine), then
	// drop the client.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	c := r.getCaller()
	for _, m := range moved {
		if m.sc == sc {
			_, _ = c.Close(ctx, m.sc.bc, m.handle)
		}
	}
	cancel()
	r.putCaller(c)
	var rest []movedRef
	for _, m := range moved {
		if m.sc != sc {
			rest = append(rest, m)
		}
	}
	r.closeMovedAsync(rest)
	sc.bc.Close()
	return nil
}

// Close tears the router down: fronts, shard clients, session table.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conns := make([]*shardConn, 0, len(r.shards))
	for _, sc := range r.shards {
		conns = append(conns, sc)
	}
	r.sessions = make(map[uint64]*routerSession)
	r.byID = make(map[string]*routerSession)
	r.mu.Unlock()

	r.binDown.Store(true)
	r.binMu.Lock()
	for ln := range r.binLns {
		ln.Close()
	}
	for c := range r.binConns {
		c.Close()
	}
	r.binMu.Unlock()
	r.binWG.Wait()

	for _, sc := range conns {
		sc.bc.Close()
	}
}

// RouterSessionInfo is what create/resume hand back to a front: the
// device-visible identity plus the model shape from the owning shard.
type RouterSessionInfo struct {
	ID        string
	Handle    uint64
	Epoch     uint32
	NumLevels []int
}

// errMoved is the handoff signal: the session's keyspace changed owner
// while the request was in flight.
func errMoved() error {
	return fmt.Errorf("%w: keyspace moved, resume on current owner", serve.ErrUnknownSession)
}

// mapForwardErr translates a shard-call failure into what the device
// should see. Session-scoped not-found answers become the handoff signal
// (resume); overload and sequencing errors pass through untouched so
// backoff hints and dedup semantics survive the extra hop; anything
// transport-shaped becomes a retryable server-closed.
func mapForwardErr(err error, sessionOp bool) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, serve.ErrOverloaded),
		errors.Is(err, serve.ErrBadSeq),
		errors.Is(err, serve.ErrBadRequest):
		return err
	case sessionOp && errors.Is(err, serve.ErrNoSession):
		// Covers ErrUnknownSession too (it wraps ErrNoSession): either way
		// the shard forgot the session and the device must resume.
		return fmt.Errorf("%w: shard lost session (%v)", serve.ErrUnknownSession, err)
	case sessionOp && errors.Is(err, serve.ErrSessionClosed):
		return fmt.Errorf("%w: shard session closed (%v)", serve.ErrUnknownSession, err)
	default:
		return fmt.Errorf("%w: shard call failed: %v", serve.ErrServerClosed, err)
	}
}

// maxPlaceAttempts bounds the create/resume placement loop against a ring
// that changes on every attempt; membership changes are rare, so 4 is
// generous.
const maxPlaceAttempts = 4

// place reserves a session entry on the key's current owner and forwards
// open (a create or resume encoded by the front's caller). If the ring
// moved mid-flight the shard-side session is closed and placement retries
// on the new owner.
func (r *Router) place(ctx context.Context, c *serve.BinCaller, key uint64,
	open func(*serve.BinClient) (serve.BinSessionInfo, error)) (RouterSessionInfo, error) {
	for attempt := 0; attempt < maxPlaceAttempts; attempt++ {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return RouterSessionInfo{}, serve.ErrServerClosed
		}
		owner, ok := r.ring.Owner(key)
		if !ok {
			r.mu.Unlock()
			return RouterSessionInfo{}, fmt.Errorf("%w: no shards in the ring", serve.ErrServerClosed)
		}
		sc := r.shards[owner]
		r.nextHandle++
		s := &routerSession{
			handle: r.nextHandle,
			id:     fmt.Sprintf("r-%06d", r.nextHandle),
			key:    key,
			shard:  sc,
		}
		r.sessions[s.handle] = s
		r.byID[s.id] = s
		r.mu.Unlock()

		info, err := open(sc.bc)
		if err != nil {
			r.dropSession(s)
			r.forwardErrors.Add(1)
			return RouterSessionInfo{}, mapForwardErr(err, false)
		}
		s.mu.Lock()
		if s.moved {
			s.mu.Unlock()
			// The ring changed while the open was in flight: this shard no
			// longer owns the key. Undo the shard-side session and place
			// again on the current owner.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = c.Close(cctx, sc.bc, info.Handle)
			cancel()
			continue
		}
		s.shardHandle = info.Handle
		s.shardEpoch = info.Epoch
		s.mu.Unlock()
		return RouterSessionInfo{
			ID:        s.id,
			Handle:    s.handle,
			Epoch:     r.cfg.Epoch,
			NumLevels: append([]int(nil), info.NumLevels...),
		}, nil
	}
	return RouterSessionInfo{}, fmt.Errorf("%w: placement unstable (ring churn)", serve.ErrServerClosed)
}

func (r *Router) dropSession(s *routerSession) {
	r.mu.Lock()
	delete(r.sessions, s.handle)
	delete(r.byID, s.id)
	r.mu.Unlock()
}

// CreateSession places a new device session on its key's owner. The
// device's seed is the routing key — the only device-identifying field the
// wire create carries, and the one thing that survives resumes.
func (r *Router) CreateSession(ctx context.Context, c *serve.BinCaller, opts serve.SessionOptions) (RouterSessionInfo, error) {
	info, err := r.place(ctx, c, opts.Seed, func(bc *serve.BinClient) (serve.BinSessionInfo, error) {
		return c.Create(ctx, bc, opts)
	})
	if err == nil {
		r.sessionsCreated.Add(1)
	}
	return info, err
}

// ResumeSession places a resumed session on its key's CURRENT owner — the
// second half of the handoff: the device carries its mirror state here
// after an ErrUnknownSession answer.
func (r *Router) ResumeSession(ctx context.Context, c *serve.BinCaller, st serve.ResumeState) (RouterSessionInfo, error) {
	info, err := r.place(ctx, c, st.Options.Seed, func(bc *serve.BinClient) (serve.BinSessionInfo, error) {
		return c.Resume(ctx, bc, st)
	})
	if err == nil {
		r.resumesFwd.Add(1)
	}
	return info, err
}

// lookupHandle resolves a device-visible handle under the router epoch.
func (r *Router) lookupHandle(handle uint64, epoch uint32) (*routerSession, error) {
	if epoch != 0 && epoch != r.cfg.Epoch {
		return nil, serve.ErrUnknownSession
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, serve.ErrServerClosed
	}
	s, ok := r.sessions[handle]
	if !ok {
		if epoch == 0 {
			return nil, serve.ErrNoSession
		}
		return nil, serve.ErrUnknownSession
	}
	return s, nil
}

// lookupID is lookupHandle for the HTTP front's string ids.
func (r *Router) lookupID(id string, epoch uint32) (*routerSession, error) {
	if epoch != 0 && epoch != r.cfg.Epoch {
		return nil, serve.ErrUnknownSession
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, serve.ErrServerClosed
	}
	s, ok := r.byID[id]
	if !ok {
		if epoch == 0 {
			return nil, fmt.Errorf("%w: %q", serve.ErrNoSession, id)
		}
		return nil, serve.ErrUnknownSession
	}
	return s, nil
}

// target snapshots the session's shard-side identity for one forward.
func (s *routerSession) target() (*shardConn, uint64, uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, 0, serve.ErrSessionClosed
	}
	if s.moved || s.shard == nil {
		return nil, 0, 0, errMoved()
	}
	return s.shard, s.shardHandle, s.shardEpoch, nil
}

// Decide forwards one decide frame. The returned slice is the caller's
// scratch, valid until its next DecideSeq.
func (r *Router) Decide(ctx context.Context, c *serve.BinCaller, handle uint64, epoch uint32, seq uint64, wobs []wire.Obs) ([]int, error) {
	s, err := r.lookupHandle(handle, epoch)
	if err != nil {
		return nil, err
	}
	sc, sh, se, err := s.target()
	if err != nil {
		return nil, err
	}
	levels, err := c.DecideSeq(ctx, sc.bc, sh, se, seq, wobs)
	if err != nil {
		r.forwardErrors.Add(1)
		return nil, mapForwardErr(err, true)
	}
	r.decideFrames.Add(1)
	return levels, nil
}

// DecideByID is Decide addressed by the HTTP front's session id.
func (r *Router) DecideByID(ctx context.Context, c *serve.BinCaller, id string, epoch uint32, seq uint64, obs []serve.Observation) ([]int, error) {
	s, err := r.lookupID(id, epoch)
	if err != nil {
		return nil, err
	}
	sc, sh, se, err := s.target()
	if err != nil {
		return nil, err
	}
	levels, err := c.DecideSeq(ctx, sc.bc, sh, se, seq, c.ObsToWire(obs))
	if err != nil {
		r.forwardErrors.Add(1)
		return nil, mapForwardErr(err, true)
	}
	r.decideFrames.Add(1)
	return levels, nil
}

// Reward forwards a reward report. epoch addresses the *device-facing*
// incarnation (0 = don't check); seq is the device's reward sequence
// number, forwarded verbatim so the shard's dedup cursor sees the same
// stream the device's mirror numbers.
func (r *Router) Reward(ctx context.Context, c *serve.BinCaller, handle uint64, epoch uint32, seq uint64, reward float64) (wire.Stats, error) {
	s, err := r.lookupHandle(handle, epoch)
	if err != nil {
		return wire.Stats{}, err
	}
	return r.rewardSession(ctx, c, s, seq, reward)
}

// RewardByID is Reward addressed by session id.
func (r *Router) RewardByID(ctx context.Context, c *serve.BinCaller, id string, epoch uint32, seq uint64, reward float64) (wire.Stats, error) {
	s, err := r.lookupID(id, epoch)
	if err != nil {
		return wire.Stats{}, err
	}
	return r.rewardSession(ctx, c, s, seq, reward)
}

func (r *Router) rewardSession(ctx context.Context, c *serve.BinCaller, s *routerSession, seq uint64, reward float64) (wire.Stats, error) {
	sc, sh, se, err := s.target()
	if err != nil {
		return wire.Stats{}, err
	}
	st, err := c.Reward(ctx, sc.bc, sh, se, seq, reward)
	if err != nil {
		r.forwardErrors.Add(1)
		return wire.Stats{}, mapForwardErr(err, true)
	}
	r.rewardsFwd.Add(1)
	return st, nil
}

// CloseSession forwards a close and retires the routed session.
func (r *Router) CloseSession(ctx context.Context, c *serve.BinCaller, handle uint64) (wire.Stats, error) {
	s, err := r.lookupHandle(handle, 0)
	if err != nil {
		return wire.Stats{}, err
	}
	return r.closeSession(ctx, c, s)
}

// CloseSessionByID is CloseSession addressed by session id.
func (r *Router) CloseSessionByID(ctx context.Context, c *serve.BinCaller, id string) (wire.Stats, error) {
	s, err := r.lookupID(id, 0)
	if err != nil {
		return wire.Stats{}, err
	}
	return r.closeSession(ctx, c, s)
}

func (r *Router) closeSession(ctx context.Context, c *serve.BinCaller, s *routerSession) (wire.Stats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return wire.Stats{}, serve.ErrSessionClosed
	}
	if s.moved || s.shard == nil {
		s.closed = true
		s.mu.Unlock()
		r.dropSession(s)
		return wire.Stats{}, errMoved()
	}
	s.closed = true
	sc, sh := s.shard, s.shardHandle
	s.mu.Unlock()
	r.dropSession(s)
	st, err := c.Close(ctx, sc.bc, sh)
	if err != nil {
		r.forwardErrors.Add(1)
		return wire.Stats{}, mapForwardErr(err, true)
	}
	return st, nil
}
