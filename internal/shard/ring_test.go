package shard

import (
	"fmt"
	"testing"
)

// TestRingGoldenDeterminism is the cross-process determinism pin: the
// owner of every key is a pure function of (seed, vnodes, member set), so
// this hard-coded fixture must reproduce on any machine, any Go version,
// any process — the property that lets the load generator and the router
// agree on placement without coordinating.
func TestRingGoldenDeterminism(t *testing.T) {
	r := NewRing(42, 64)
	for _, n := range []string{"alpha", "beta", "gamma"} {
		if !r.Add(n) {
			t.Fatalf("add %s failed", n)
		}
	}
	want := []string{
		"alpha", "beta", "gamma", "alpha", "alpha", "alpha", "gamma", "beta",
		"alpha", "gamma", "gamma", "beta", "beta", "gamma", "alpha", "beta",
	}
	for k, w := range want {
		if got, ok := r.Owner(uint64(k)); !ok || got != w {
			t.Fatalf("owner(%d) = %q, want %q", k, got, w)
		}
	}
}

// TestRingOrderIndependence checks that insertion history is invisible:
// any add/remove path arriving at the same member set routes identically.
func TestRingOrderIndependence(t *testing.T) {
	build := func(ops func(*Ring)) *Ring {
		r := NewRing(9, 32)
		ops(r)
		return r
	}
	a := build(func(r *Ring) { r.Add("s0"); r.Add("s1"); r.Add("s2") })
	b := build(func(r *Ring) { r.Add("s2"); r.Add("s0"); r.Add("s1") })
	c := build(func(r *Ring) {
		r.Add("s1")
		r.Add("x")
		r.Add("s2")
		r.Remove("x")
		r.Add("s0")
	})
	for k := uint64(0); k < 5000; k++ {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %d: owners diverge across build orders: %q %q %q", k, oa, ob, oc)
		}
	}
}

// TestRingMinimalMovementOnAdd checks the strict form of the movement
// bound: every key that changes owner when a member joins moves TO the
// new member, and the moved fraction is close to the ideal 1/(n+1).
func TestRingMinimalMovementOnAdd(t *testing.T) {
	r := NewRing(7, DefaultVNodes)
	for s := 0; s < 3; s++ {
		r.Add(fmt.Sprintf("s%d", s))
	}
	const keys = 20000
	before := make([]string, keys)
	for k := range before {
		before[k], _ = r.Owner(uint64(k))
	}
	r.Add("s3")
	moved := 0
	for k := range before {
		after, _ := r.Owner(uint64(k))
		if after != before[k] {
			moved++
			if after != "s3" {
				t.Fatalf("key %d moved %s -> %s, not to the new member", k, before[k], after)
			}
		}
	}
	// Ideal movement is keys/4 = 5000; allow vnode-placement variance.
	if moved < keys/6 || moved > keys/3 {
		t.Fatalf("moved %d of %d keys on add; want ~%d (1/4)", moved, keys, keys/4)
	}
}

// TestRingMinimalMovementOnRemove checks that removing a member moves
// exactly the keys it owned, and that re-adding it restores the original
// assignment key for key.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	r := NewRing(11, DefaultVNodes)
	for s := 0; s < 4; s++ {
		r.Add(fmt.Sprintf("s%d", s))
	}
	const keys = 20000
	before := make([]string, keys)
	for k := range before {
		before[k], _ = r.Owner(uint64(k))
	}
	r.Remove("s1")
	for k := range before {
		after, _ := r.Owner(uint64(k))
		if (after != before[k]) != (before[k] == "s1") {
			t.Fatalf("key %d: owner %s -> %s on remove of s1 (movement must be exactly s1's keyspace)",
				k, before[k], after)
		}
		if after == "s1" {
			t.Fatalf("key %d still routed to removed member", k)
		}
	}
	r.Add("s1")
	for k := range before {
		after, _ := r.Owner(uint64(k))
		if after != before[k] {
			t.Fatalf("key %d: owner %s != %s after remove+re-add", k, after, before[k])
		}
	}
}

// TestRingBalance pins load spread at 1k and 100k device keys (derived
// with the fleet's DeviceSeed-shaped stride): χ² against the uniform
// expectation and worst-member deviation stay within tolerance. The seeds
// are fixed, so the statistics are deterministic — thresholds hold exact
// headroom over the measured values, and any hash or placement change that
// degrades balance trips them.
func TestRingBalance(t *testing.T) {
	cases := []struct {
		keys     int
		shards   int
		maxChi2  float64
		maxDev   float64 // |count/expected - 1| for the worst member
	}{
		{1000, 4, 40, 0.25},
		{100000, 4, 600, 0.10},
		{100000, 8, 400, 0.12},
	}
	for _, tc := range cases {
		r := NewRing(7, DefaultVNodes)
		for s := 0; s < tc.shards; s++ {
			r.Add(fmt.Sprintf("s%d", s))
		}
		counts := make(map[string]int, tc.shards)
		for k := 0; k < tc.keys; k++ {
			o, ok := r.Owner(1 + uint64(k)*0x9e3779b9)
			if !ok {
				t.Fatalf("no owner for key %d", k)
			}
			counts[o]++
		}
		if len(counts) != tc.shards {
			t.Fatalf("%d keys landed on %d of %d shards", tc.keys, len(counts), tc.shards)
		}
		exp := float64(tc.keys) / float64(tc.shards)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - exp
			chi2 += d * d / exp
			dev := d / exp
			if dev < 0 {
				dev = -dev
			}
			if dev > tc.maxDev {
				t.Errorf("keys=%d shards=%d: member at %.1f%% deviation (count %d, expected %.0f), tolerance %.1f%%",
					tc.keys, tc.shards, dev*100, c, exp, tc.maxDev*100)
			}
		}
		if chi2 > tc.maxChi2 {
			t.Errorf("keys=%d shards=%d: χ² = %.1f exceeds %.1f", tc.keys, tc.shards, chi2, tc.maxChi2)
		}
	}
}

// TestRingEmptyAndDuplicates covers the degenerate edges the router can
// hit mid-rebalance.
func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(1, 8)
	if _, ok := r.Owner(5); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("duplicate add not rejected")
	}
	if o, ok := r.Owner(5); !ok || o != "a" {
		t.Fatalf("single-member ring routed to %q", o)
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("duplicate remove not rejected")
	}
	if _, ok := r.Owner(5); ok {
		t.Fatal("emptied ring claimed an owner")
	}
	if r.Contains("a") {
		t.Fatal("removed member still reported present")
	}
}
