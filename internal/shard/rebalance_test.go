package shard

import (
	"context"
	"testing"
	"time"

	"rlpm/internal/chaos"
)

// TestShardedDifferentialOracleBin is the headline differential: a 4-shard
// fleet behind the router serves every device a decision sequence
// byte-identical to a single-process server over the same model. No
// membership change — this pins routing + checkpoint hydration alone.
func TestShardedDifferentialOracleBin(t *testing.T) {
	model := testModel(t, 8, 6)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:   "bin",
		Shards:  4,
		Devices: 10,
		Periods: 90,
		Seed:    7,
		Epsilon: 0.2,
	})
	if err != nil {
		t.Fatalf("differential run: %v (report %+v)", err, rep)
	}
	if rep.Decisions != 10*90 {
		t.Fatalf("acked %d decisions, want %d", rep.Decisions, 10*90)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d devices diverged from the oracle", rep.Mismatches)
	}
	if rep.Moved != 0 || rep.Resumes != 0 {
		t.Fatalf("steady-state run saw handoffs: moved=%d resumes=%d", rep.Moved, rep.Resumes)
	}
}

// TestShardedDifferentialOracleJSON runs the same differential over the
// router's JSON face.
func TestShardedDifferentialOracleJSON(t *testing.T) {
	model := testModel(t, 6, 4)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:   "json",
		Shards:  2,
		Devices: 6,
		Periods: 50,
		Seed:    3,
		Epsilon: 0.2,
	})
	if err != nil {
		t.Fatalf("differential run: %v (report %+v)", err, rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d devices diverged from the oracle", rep.Mismatches)
	}
}

// TestRebalanceGraceful removes the most-loaded shard mid-run (ring first,
// then stop) and adds a fresh shard later — sessions hand off with zero
// lost or duplicated decisions and no divergence.
func TestRebalanceGraceful(t *testing.T) {
	model := testModel(t, 8, 6)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:     "bin",
		Shards:    3,
		Devices:   9,
		Periods:   120,
		Seed:      5,
		Epsilon:   0.25,
		Rebalance: true,
	})
	if err != nil {
		t.Fatalf("rebalance run: %v (report %+v)", err, rep)
	}
	if rep.Removed == "" || rep.Added == "" {
		t.Fatalf("rebalance did not record both membership changes: %+v", rep)
	}
	if rep.Moved == 0 {
		t.Fatal("no sessions moved — handoff path unexercised")
	}
	if rep.Resumes == 0 || rep.RouterResumes == 0 {
		t.Fatalf("handoff without resumes: client=%d router=%d", rep.Resumes, rep.RouterResumes)
	}
}

// TestRebalanceKill is the abrupt flavor: the victim shard dies with
// sessions live, then leaves the ring. Devices must ride out the failed
// forwards and still match the oracle exactly.
func TestRebalanceKill(t *testing.T) {
	model := testModel(t, 8, 6)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:     "bin",
		Shards:    3,
		Devices:   9,
		Periods:   120,
		Seed:      11,
		Epsilon:   0.25,
		Rebalance: true,
		Kill:      true,
	})
	if err != nil {
		t.Fatalf("kill run: %v (report %+v)", err, rep)
	}
	if rep.Moved == 0 || rep.Resumes == 0 {
		t.Fatalf("kill run saw no handoffs: moved=%d resumes=%d", rep.Moved, rep.Resumes)
	}
}

// TestRebalanceJSONGraceful exercises the handoff through the JSON face.
func TestRebalanceJSONGraceful(t *testing.T) {
	model := testModel(t, 6, 4)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:     "json",
		Shards:    2,
		Devices:   6,
		Periods:   90,
		Seed:      9,
		Epsilon:   0.2,
		Rebalance: true,
	})
	if err != nil {
		t.Fatalf("json rebalance run: %v (report %+v)", err, rep)
	}
	if rep.Moved == 0 || rep.Resumes == 0 {
		t.Fatalf("json rebalance saw no handoffs: moved=%d resumes=%d", rep.Moved, rep.Resumes)
	}
}

// TestRebalanceUnderFaults layers a seeded fault schedule (drops, latency)
// between devices and the router on top of a graceful rebalance — the
// decision stream must still match the oracle byte for byte.
func TestRebalanceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault leg skipped in -short")
	}
	model := testModel(t, 6, 4)
	rep, err := RunRebalance(context.Background(), model, RebalanceConfig{
		Proto:     "bin",
		Shards:    2,
		Devices:   6,
		Periods:   80,
		Seed:      13,
		Epsilon:   0.2,
		Rebalance: true,
		Faults: chaos.Config{
			DropRate:    0.002,
			LatencyRate: 0.02,
			LatencyFor:  2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("faulted rebalance run: %v (report %+v)", err, rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d devices diverged under faults", rep.Mismatches)
	}
}
