// Package shard is the horizontal scaling tier: a consistent-hash ring
// mapping device keys to N pmserve shards, a thin router speaking the wire
// v2 protocol on both sides, per-shard Q-table replicas hydrated from the
// versioned checkpoint codec, and shard add/remove with session handoff.
//
// The ring is the contract everything else leans on:
//
//   - deterministic: point placement depends only on (seed, member name,
//     virtual node index) — two processes that agree on the member set and
//     seed agree on every routing decision, with no coordination. The
//     load generator and the router exploit this to place devices
//     identically without talking to each other.
//   - minimal movement: adding a member moves only the keys that land on
//     the new member; removing one moves only the keys it owned. Session
//     handoff cost is proportional to the keyspace that actually moved.
//   - balanced: enough virtual nodes per member that key load spreads
//     within tolerance (pinned by a χ² property test).
package shard

import (
	"sort"

	"rlpm/internal/rng"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes zero: enough for single-digit-percent imbalance at realistic
// member counts, small enough that rebuilds stay microseconds.
const DefaultVNodes = 160

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	h     uint64
	owner int32 // index into names
	vn    int32
}

// Ring is a seed-deterministic consistent-hash ring. Not goroutine-safe;
// the router guards it with its own lock.
type Ring struct {
	seed   uint64
	vnodes int
	names  []string // sorted member names
	points []ringPoint
}

// NewRing creates an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{seed: seed, vnodes: vnodes}
}

// fnv64a is FNV-1a over the member name — stable across processes and Go
// versions, unlike the runtime's randomized string hash.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// pointHash places one virtual node. It depends only on (seed, name, vn),
// never on the member set — the independence that makes key movement
// minimal on membership change.
func (r *Ring) pointHash(name string, vn int) uint64 {
	return rng.Mix64(fnv64a(name) + rng.Mix64(r.seed+uint64(vn)*0x9e3779b97f4a7c15))
}

// keyHash places a device key on the circle.
func (r *Ring) keyHash(key uint64) uint64 {
	return rng.Mix64(key ^ rng.Mix64(r.seed))
}

// rebuild recomputes the sorted point list from the member set. The sort
// order (hash, then name, then vnode) is a total order independent of
// insertion history, so every process building the same member set gets
// the identical circle.
func (r *Ring) rebuild() {
	if cap(r.points) < len(r.names)*r.vnodes {
		r.points = make([]ringPoint, 0, len(r.names)*r.vnodes)
	}
	r.points = r.points[:0]
	for oi, name := range r.names {
		for vn := 0; vn < r.vnodes; vn++ {
			r.points = append(r.points, ringPoint{h: r.pointHash(name, vn), owner: int32(oi), vn: int32(vn)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.h != b.h {
			return a.h < b.h
		}
		if r.names[a.owner] != r.names[b.owner] {
			return r.names[a.owner] < r.names[b.owner]
		}
		return a.vn < b.vn
	})
}

// Add inserts a member; it reports false if the name is already present.
func (r *Ring) Add(name string) bool {
	i := sort.SearchStrings(r.names, name)
	if i < len(r.names) && r.names[i] == name {
		return false
	}
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	r.rebuild()
	return true
}

// Remove deletes a member; it reports false if the name is absent.
func (r *Ring) Remove(name string) bool {
	i := sort.SearchStrings(r.names, name)
	if i == len(r.names) || r.names[i] != name {
		return false
	}
	r.names = append(r.names[:i], r.names[i+1:]...)
	r.rebuild()
	return true
}

// Members returns the member names in sorted order. The slice is a copy.
func (r *Ring) Members() []string {
	return append([]string(nil), r.names...)
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.names) }

// Contains reports whether name is a member.
func (r *Ring) Contains(name string) bool {
	i := sort.SearchStrings(r.names, name)
	return i < len(r.names) && r.names[i] == name
}

// OwnerIndex maps a key to its owning member's index in Members() order.
// ok is false on an empty ring.
func (r *Ring) OwnerIndex(key uint64) (int, bool) {
	if len(r.points) == 0 {
		return -1, false
	}
	kh := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].owner), true
}

// Owner maps a key to its owning member's name. ok is false on an empty
// ring.
func (r *Ring) Owner(key uint64) (string, bool) {
	i, ok := r.OwnerIndex(key)
	if !ok {
		return "", false
	}
	return r.names[i], true
}
