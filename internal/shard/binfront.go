// Binary front: the router's wire-v2 listener. One goroutine per device
// connection, one BinCaller per connection as forwarding scratch, frames
// answered strictly in order (devices pipeline; responses must not
// reorder past the frames that produced them). Error frames carry the
// same codes and backoff hints a shard itself would send — including the
// shard's own overload hint, which BinCaller surfaces as a BackoffError
// and the front re-encodes unchanged — so a device cannot tell a router
// from a shard.
package shard

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"time"

	"rlpm/internal/serve"
	"rlpm/internal/wire"
)

// ServeBin accepts binary-protocol device connections on ln until the
// listener fails or the router closes. It blocks; run it in a goroutine.
func (r *Router) ServeBin(ln net.Listener) error {
	r.binMu.Lock()
	if r.binDown.Load() {
		r.binMu.Unlock()
		ln.Close()
		return serve.ErrServerClosed
	}
	r.binLns[ln] = struct{}{}
	r.binMu.Unlock()
	defer func() {
		r.binMu.Lock()
		delete(r.binLns, ln)
		r.binMu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.binDown.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.binMu.Lock()
		if r.binDown.Load() {
			r.binMu.Unlock()
			conn.Close()
			return nil
		}
		r.binConns[conn] = struct{}{}
		r.binWG.Add(1)
		r.binMu.Unlock()
		go r.serveBinConn(conn)
	}
}

// routerConnState is one device connection's reusable working set.
type routerConnState struct {
	br      *bufio.Reader
	bw      *bufio.Writer
	hdr     [wire.HeaderSize]byte
	payload []byte
	wbuf    []byte
	dreq    wire.DecideReq
	creq    wire.CreateReq
	rreq    wire.RewardReq
	clreq   wire.CloseReq
	rsreq   wire.ResumeReq
	caller  serve.BinCaller
}

func (r *Router) serveBinConn(conn net.Conn) {
	defer func() {
		r.binMu.Lock()
		delete(r.binConns, conn)
		r.binMu.Unlock()
		conn.Close()
		r.binWG.Done()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	st := &routerConnState{
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriterSize(conn, 64<<10),
	}
	for {
		h, payload, err := wire.ReadFrame(st.br, &st.hdr, st.payload)
		st.payload = payload
		if err != nil {
			if !errors.Is(err, io.EOF) {
				st.wbuf = wire.FinishFrame(
					wire.AppendError(wire.BeginFrame(st.wbuf), wire.CodeBadRequest, 0, err.Error()),
					wire.TError, h.ReqID)
				st.bw.Write(st.wbuf)
				st.bw.Flush()
				routerGracefulClose(conn, st.br)
			}
			return
		}
		keep := r.handleBinFrame(st, h)
		if st.br.Buffered() == 0 || !keep {
			if err := st.bw.Flush(); err != nil {
				return
			}
		}
		if !keep {
			routerGracefulClose(conn, st.br)
			return
		}
	}
}

// routerGracefulClose mirrors the shard server's teardown: half-close and
// drain so the final error frame lands as data + EOF, not a reset.
func routerGracefulClose(conn net.Conn, br *bufio.Reader) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, io.LimitReader(br, 1<<20))
}

// binFrontError appends a TError frame for err, carrying the shard's
// backoff hint when the failure was an overload shed, and reports whether
// the connection survives (wire-level decode failures poison framing).
func (r *Router) binFrontError(st *routerConnState, reqID uint32, err error) bool {
	var backoffMs uint32
	var be *serve.BackoffError
	if errors.As(err, &be) {
		backoffMs = uint32(be.RetryAfter / time.Millisecond)
	}
	st.wbuf = wire.FinishFrame(
		wire.AppendError(wire.BeginFrame(st.wbuf), serve.WireCode(err), backoffMs, err.Error()),
		wire.TError, reqID)
	st.bw.Write(st.wbuf)
	return serve.WireCode(err) != wire.CodeBadRequest || !isRouterWireErr(err)
}

func isRouterWireErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) || errors.Is(err, wire.ErrBadPayload) || errors.Is(err, wire.ErrBadType)
}

// handleBinFrame forwards one request frame, appending exactly one
// response frame, and reports whether the connection stays open.
func (r *Router) handleBinFrame(st *routerConnState, h wire.Header) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.CallTimeout)
	defer cancel()
	switch h.Type {
	case wire.TDecide:
		if err := wire.ParseDecideReq(st.payload, &st.dreq); err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		levels, err := r.Decide(ctx, &st.caller, st.dreq.Handle, st.dreq.Epoch, st.dreq.Seq, st.dreq.Obs)
		if err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendDecideOK(wire.BeginFrame(st.wbuf), levels),
			wire.TDecideOK, h.ReqID)
	case wire.TCreate:
		if err := wire.ParseCreateReq(st.payload, &st.creq); err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		info, err := r.CreateSession(ctx, &st.caller, serve.SessionOptions{
			Epsilon:      st.creq.Epsilon,
			EpsilonMin:   st.creq.EpsilonMin,
			EpsilonDecay: st.creq.EpsilonDecay,
			Seed:         st.creq.Seed,
		})
		if err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), info.Handle, info.Epoch, info.NumLevels),
			wire.TCreateOK, h.ReqID)
	case wire.TResume:
		if err := wire.ParseResumeReq(st.payload, &st.rsreq); err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		info, err := r.ResumeSession(ctx, &st.caller, serve.ResumeState{
			Options: serve.SessionOptions{
				Epsilon:      st.rsreq.Opts.Epsilon,
				EpsilonMin:   st.rsreq.Opts.EpsilonMin,
				EpsilonDecay: st.rsreq.Opts.EpsilonDecay,
				Seed:         st.rsreq.Opts.Seed,
			},
			Epsilon:    st.rsreq.EpsNow,
			Rng:        st.rsreq.Rng,
			Seq:        st.rsreq.Seq,
			LastLevels: st.rsreq.LastLevels,
			PrevDemand: st.rsreq.PrevDemand,
			Decisions:  st.rsreq.Decisions,
			Rewards:    st.rsreq.Rewards,
			RewardSum:  st.rsreq.RewardSum,
		})
		if err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), info.Handle, info.Epoch, info.NumLevels),
			wire.TResumeOK, h.ReqID)
	case wire.TReward:
		if err := wire.ParseRewardReq(st.payload, &st.rreq); err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		stats, err := r.Reward(ctx, &st.caller, st.rreq.Handle, st.rreq.Epoch, st.rreq.Seq, st.rreq.Reward)
		if err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), stats),
			wire.TRewardOK, h.ReqID)
	case wire.TClose:
		if err := wire.ParseCloseReq(st.payload, &st.clreq); err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		stats, err := r.CloseSession(ctx, &st.caller, st.clreq.Handle)
		if err != nil {
			return r.binFrontError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), stats),
			wire.TCloseOK, h.ReqID)
	default:
		r.binFrontError(st, h.ReqID, wire.ErrBadType)
		return false
	}
	st.bw.Write(st.wbuf)
	return true
}
