// HTTP front: the router's JSON API. Devices get the same routes a shard
// serves — create/resume/decide/reward/close under /v1, /metrics,
// /healthz — plus the fleet views only a router can offer: GET /v1/ring
// (membership + placement contract) and a /metrics exposition that merges
// every shard's scraped registry snapshot into one fleet-wide view with
// per-shard rollup series alongside the router's own counters.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"rlpm/internal/obs"
	"rlpm/internal/serve"
)

// RingResponse answers GET /v1/ring: everything a peer process needs to
// reproduce the router's placement decisions byte-for-byte.
type RingResponse struct {
	Seed   uint64      `json:"seed"`
	VNodes int         `json:"vnodes"`
	Epoch  uint32      `json:"epoch"`
	Shards []ShardSpec `json:"shards"`
}

// ShardStatus is one shard's slice of the fleet rollup.
type ShardStatus struct {
	Name      string `json:"name"`
	Up        bool   `json:"up"`
	Sessions  int    `json:"sessions"`
	Decisions uint64 `json:"decisions"`
}

// RouterMetrics is the JSON /metrics body. Decisions aggregates the
// fleet's decide-period counters from the live scrape, so the load
// generator's JSON scrape reads fleet truth, not just router-local
// forwarding counts.
type RouterMetrics struct {
	UptimeS         float64       `json:"uptime_s"`
	Shards          int           `json:"shards"`
	Sessions        int           `json:"sessions"`
	SessionsCreated uint64        `json:"sessions_created"`
	Resumes         uint64        `json:"resumes"`
	Moved           uint64        `json:"moved"`
	Decisions       uint64        `json:"decisions"`
	DecideFrames    uint64        `json:"decide_frames"`
	Rewards         uint64        `json:"rewards"`
	ForwardErrors   uint64        `json:"forward_errors"`
	PerShard        []ShardStatus `json:"per_shard"`
}

// errorResponse mirrors serve's uniform error body, code strings included,
// so resilient clients classify router answers identically.
type errorResponse struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the router's HTTP API.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", r.handleCreate)
	mux.HandleFunc("POST /v1/sessions/resume", r.handleResume)
	mux.HandleFunc("POST /v1/sessions/{id}/decide", r.handleDecide)
	mux.HandleFunc("POST /v1/sessions/{id}/reward", r.handleReward)
	mux.HandleFunc("DELETE /v1/sessions/{id}", r.handleClose)
	mux.HandleFunc("GET /v1/ring", r.handleRing)
	mux.HandleFunc("POST /v1/shards", r.handleAddShard)
	mux.HandleFunc("DELETE /v1/shards/{name}", r.handleRemoveShard)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps a core-op failure onto serve's HTTP statuses and code
// strings, preserving the shard's backoff hint on overload sheds.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, ""
	switch {
	case errors.Is(err, serve.ErrUnknownSession):
		status, code = http.StatusNotFound, "unknown_session"
	case errors.Is(err, serve.ErrNoSession):
		status, code = http.StatusNotFound, "no_session"
	case errors.Is(err, serve.ErrSessionClosed):
		status, code = http.StatusGone, "session_closed"
	case errors.Is(err, serve.ErrBadSeq):
		status, code = http.StatusConflict, "bad_seq"
	case errors.Is(err, serve.ErrServerClosed):
		status, code = http.StatusServiceUnavailable, "server_closed"
	case errors.Is(err, serve.ErrOverloaded):
		status, code = http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, serve.ErrBadRequest):
		status, code = http.StatusBadRequest, ""
	}
	resp := errorResponse{Error: err.Error(), Code: code}
	var be *serve.BackoffError
	if errors.As(err, &be) && be.RetryAfter > 0 {
		resp.RetryAfterMs = be.RetryAfter.Milliseconds()
		secs := (be.RetryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	}
	writeJSON(w, status, resp)
}

func writeBadRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

func decodeBody(req *http.Request, v any) error {
	err := json.NewDecoder(req.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("shard: bad request body: %w", err)
}

func (r *Router) reqCtx(req *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(req.Context(), r.cfg.CallTimeout)
}

func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	var opts serve.SessionOptions
	if err := decodeBody(req, &opts); err != nil {
		writeBadRequest(w, err)
		return
	}
	ctx, cancel := r.reqCtx(req)
	defer cancel()
	c := r.getCaller()
	info, err := r.CreateSession(ctx, c, opts)
	r.putCaller(c)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.CreateSessionResponse{
		ID:        info.ID,
		Epoch:     info.Epoch,
		Clusters:  len(info.NumLevels),
		NumLevels: info.NumLevels,
	})
}

func (r *Router) handleResume(w http.ResponseWriter, req *http.Request) {
	var body serve.ResumeSessionRequest
	if err := decodeBody(req, &body); err != nil {
		writeBadRequest(w, err)
		return
	}
	st := serve.ResumeState{
		Options:    body.Options,
		Epsilon:    body.Epsilon,
		Seq:        body.Seq,
		LastLevels: body.LastLevels,
		PrevDemand: body.PrevDemand,
		Decisions:  body.Decisions,
		Rewards:    body.Rewards,
		RewardSum:  body.RewardSum,
	}
	for i, hx := range body.Rng {
		if hx == "" {
			continue
		}
		v, err := strconv.ParseUint(hx, 16, 64)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("shard: bad rng state word %d: %w", i, err))
			return
		}
		st.Rng[i] = v
	}
	ctx, cancel := r.reqCtx(req)
	defer cancel()
	c := r.getCaller()
	info, err := r.ResumeSession(ctx, c, st)
	r.putCaller(c)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.CreateSessionResponse{
		ID:        info.ID,
		Epoch:     info.Epoch,
		Clusters:  len(info.NumLevels),
		NumLevels: info.NumLevels,
	})
}

func (r *Router) handleDecide(w http.ResponseWriter, req *http.Request) {
	var body serve.DecideRequest
	if err := decodeBody(req, &body); err != nil {
		writeBadRequest(w, err)
		return
	}
	ctx, cancel := r.reqCtx(req)
	defer cancel()
	c := r.getCaller()
	levels, err := r.DecideByID(ctx, c, req.PathValue("id"), body.Epoch, body.Seq, body.Observations)
	if err != nil {
		r.putCaller(c)
		writeError(w, err)
		return
	}
	// levels is the caller's scratch: copy before releasing it to the pool.
	out := append([]int(nil), levels...)
	r.putCaller(c)
	writeJSON(w, http.StatusOK, serve.DecideResponse{Levels: out})
}

func (r *Router) handleReward(w http.ResponseWriter, req *http.Request) {
	var body serve.RewardRequest
	if err := decodeBody(req, &body); err != nil {
		writeBadRequest(w, err)
		return
	}
	ctx, cancel := r.reqCtx(req)
	defer cancel()
	c := r.getCaller()
	st, err := r.RewardByID(ctx, c, req.PathValue("id"), body.Epoch, body.Seq, body.Reward)
	r.putCaller(c)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.SessionStats{
		ID:         req.PathValue("id"),
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	})
}

func (r *Router) handleClose(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := r.reqCtx(req)
	defer cancel()
	c := r.getCaller()
	st, err := r.CloseSessionByID(ctx, c, req.PathValue("id"))
	r.putCaller(c)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.SessionStats{
		ID:         req.PathValue("id"),
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	})
}

func (r *Router) handleRing(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	resp := RingResponse{
		Seed:   r.cfg.RingSeed,
		VNodes: r.ring.vnodes,
		Epoch:  r.cfg.Epoch,
	}
	for _, name := range r.ring.Members() {
		resp.Shards = append(resp.Shards, r.shards[name].spec)
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleAddShard / handleRemoveShard are the admin face of rebalancing.
func (r *Router) handleAddShard(w http.ResponseWriter, req *http.Request) {
	var spec ShardSpec
	if err := decodeBody(req, &spec); err != nil {
		writeBadRequest(w, err)
		return
	}
	if err := r.AddShard(spec); err != nil {
		writeBadRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "added", "shard": spec.Name})
}

func (r *Router) handleRemoveShard(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if err := r.RemoveShard(name); err != nil {
		writeBadRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed", "shard": name})
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	up := time.Since(r.start).Seconds()
	if up < 0 {
		up = 0
	}
	writeJSON(w, http.StatusOK, serve.HealthResponse{Status: "ok", UptimeS: up})
}

// shardScrape is one shard's scraped registry snapshot.
type shardScrape struct {
	spec ShardSpec
	snap obs.RegistrySnapshot
	err  error
}

// scrapeFleet GETs every shard's /debug/obs concurrently and returns the
// per-shard snapshots in ring order. Shards without an HTTP address or
// that fail to answer come back with err set — the merge skips them and
// the rollup marks them down.
func (r *Router) scrapeFleet(ctx context.Context) []shardScrape {
	specs := r.Shards()
	out := make([]shardScrape, len(specs))
	done := make(chan int, len(specs))
	for i, sp := range specs {
		out[i].spec = sp
		go func(i int, sp ShardSpec) {
			defer func() { done <- i }()
			if sp.HTTPAddr == "" {
				out[i].err = fmt.Errorf("shard %s: no http addr", sp.Name)
				return
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+sp.HTTPAddr+"/debug/obs", nil)
			if err != nil {
				out[i].err = err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out[i].err = fmt.Errorf("shard %s: scrape status %d", sp.Name, resp.StatusCode)
				return
			}
			out[i].err = json.NewDecoder(resp.Body).Decode(&out[i].snap)
		}(i, sp)
	}
	for range specs {
		<-done
	}
	return out
}

// fleetSeriesValue sums a counter/gauge series (across all label sets)
// from a snapshot.
func fleetSeriesValue(snap *obs.RegistrySnapshot, name string) float64 {
	total := 0.0
	for i := range snap.Series {
		if snap.Series[i].Name == name && snap.Series[i].Hist == nil {
			total += snap.Series[i].Value
		}
	}
	return total
}

// handleMetrics content-negotiates like a shard: JSON rollup for
// application/json, Prometheus text otherwise. Both views scrape the
// fleet live: the text exposition is the router's own registry, a
// per-shard rollup (router_shard_up, router_shard_sessions,
// router_shard_decisions_total), and then the merged fleet registry —
// every shard's counters summed and histograms bucket-merged, one series
// set for dashboards that want the fleet as if it were one process.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
	defer cancel()
	scrapes := r.scrapeFleet(ctx)

	merged := &obs.RegistrySnapshot{}
	statuses := make([]ShardStatus, 0, len(scrapes))
	var fleetDecisions uint64
	for i := range scrapes {
		sc := &scrapes[i]
		st := ShardStatus{Name: sc.spec.Name}
		if sc.err != nil {
			r.scrapeErrors.Add(1)
			statuses = append(statuses, st)
			continue
		}
		st.Up = true
		st.Sessions = int(fleetSeriesValue(&sc.snap, "serve_sessions"))
		st.Decisions = uint64(fleetSeriesValue(&sc.snap, "serve_decisions_total"))
		fleetDecisions += st.Decisions
		statuses = append(statuses, st)
		if err := merged.Merge(&sc.snap); err != nil {
			r.scrapeErrors.Add(1)
		}
	}

	if strings.Contains(req.Header.Get("Accept"), "application/json") {
		up := time.Since(r.start).Seconds()
		if up < 0 {
			up = 0
		}
		r.mu.Lock()
		nShards, nSessions := len(r.shards), len(r.sessions)
		r.mu.Unlock()
		writeJSON(w, http.StatusOK, RouterMetrics{
			UptimeS:         up,
			Shards:          nShards,
			Sessions:        nSessions,
			SessionsCreated: r.sessionsCreated.Load(),
			Resumes:         r.resumesFwd.Load(),
			Moved:           r.movedSessions.Load(),
			Decisions:       fleetDecisions,
			DecideFrames:    r.decideFrames.Load(),
			Rewards:         r.rewardsFwd.Load(),
			ForwardErrors:   r.forwardErrors.Load(),
			PerShard:        statuses,
		})
		return
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.reg.WritePrometheus(w)
	writeShardRollup(w, statuses)
	_ = merged.WritePrometheus(w)
}

// writeShardRollup emits the per-shard gauge/counter series the shard
// smoke test asserts on: one line per shard, labeled by name.
func writeShardRollup(w io.Writer, statuses []ShardStatus) {
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Name < statuses[j].Name })
	fmt.Fprintf(w, "# HELP router_shard_up whether the shard answered the last scrape\n# TYPE router_shard_up gauge\n")
	for _, st := range statuses {
		up := 0
		if st.Up {
			up = 1
		}
		fmt.Fprintf(w, "router_shard_up{shard=%q} %d\n", st.Name, up)
	}
	fmt.Fprintf(w, "# HELP router_shard_sessions live sessions per shard at the last scrape\n# TYPE router_shard_sessions gauge\n")
	for _, st := range statuses {
		fmt.Fprintf(w, "router_shard_sessions{shard=%q} %d\n", st.Name, st.Sessions)
	}
	fmt.Fprintf(w, "# HELP router_shard_decisions_total decide periods served per shard at the last scrape\n# TYPE router_shard_decisions_total counter\n")
	for _, st := range statuses {
		fmt.Fprintf(w, "router_shard_decisions_total{shard=%q} %d\n", st.Name, st.Decisions)
	}
}
