package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// TestParseDecideReqRejectsZeroCount pins count == 0 as a payload error:
// a decide frame with no observations has no meaning, and letting it
// through would make the server divide by zero when deriving the period
// count from len(obs)/clusters.
func TestParseDecideReqRejectsZeroCount(t *testing.T) {
	p := AppendDecideReq(nil, 7, 1, 3, make([]Obs, 2))
	p = p[:decideReqBase] // keep the fixed prefix only...
	binary.LittleEndian.PutUint16(p[decideReqBase-2:], 0)
	var dreq DecideReq
	err := ParseDecideReq(p, &dreq)
	if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("count=0 decide: got %v, want ErrBadPayload", err)
	}
	if !strings.Contains(err.Error(), "no observations") {
		t.Fatalf("count=0 decide error %q does not name the cause", err)
	}
}

// TestParseDecideReqRejectsHugeCount pins the count×obsSize overflow guard:
// a count whose implied payload would exceed MaxPayload must be rejected
// as a payload error before the size arithmetic runs, not reported as a
// truncation (or worse, wrapped on a 32-bit int).
func TestParseDecideReqRejectsHugeCount(t *testing.T) {
	p := AppendDecideReq(nil, 7, 1, 3, make([]Obs, 1))
	for _, n := range []uint16{65535, uint16((MaxPayload-decideReqBase)/obsSize + 1)} {
		binary.LittleEndian.PutUint16(p[decideReqBase-2:], n)
		var dreq DecideReq
		if err := ParseDecideReq(p, &dreq); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("count=%d decide: got %v, want ErrBadPayload", n, err)
		}
	}
	// The largest representable count is a size mismatch (we only supplied
	// one observation), never an overflow rejection.
	max := uint16((MaxPayload - decideReqBase) / obsSize)
	binary.LittleEndian.PutUint16(p[decideReqBase-2:], max)
	var dreq DecideReq
	if err := ParseDecideReq(p, &dreq); !errors.Is(err, ErrTruncated) {
		t.Fatalf("count=%d (max representable) decide: got %v, want ErrTruncated", max, err)
	}
}

// TestParseDecideOKRejectsZeroAndTrailing pins the response-side guards:
// an empty level vector is a payload error, and trailing bytes after the
// declared levels are rejected rather than silently ignored.
func TestParseDecideOKRejectsZeroAndTrailing(t *testing.T) {
	var dok DecideOK
	p := AppendDecideOK(nil, []int{2, 4})
	binary.LittleEndian.PutUint16(p[0:], 0)
	err := ParseDecideOK(p[:2], &dok)
	if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("count=0 decideOK: got %v, want ErrBadPayload", err)
	}
	if !strings.Contains(err.Error(), "no levels") {
		t.Fatalf("count=0 decideOK error %q does not name the cause", err)
	}
	p = AppendDecideOK(nil, []int{2, 4})
	if err := ParseDecideOK(append(p, 0xAA), &dok); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing decideOK byte: got %v, want ErrBadPayload", err)
	}
	if err := ParseDecideOK(p[:len(p)-1], &dok); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated decideOK: got %v, want ErrTruncated", err)
	}
}

// TestMultiPeriodDecideLayout pins the K-period frame layout: a frame
// carrying K periods × n clusters is byte-identical to the fixed prefix
// followed by the K single-period observation blocks concatenated in
// period order. The server relies on this to slice a multi-period payload
// into per-period decides without re-parsing.
func TestMultiPeriodDecideLayout(t *testing.T) {
	const k, n = 3, 2
	obs := make([]Obs, 0, k*n)
	for p := 0; p < k; p++ {
		for c := 0; c < n; c++ {
			obs = append(obs, Obs{
				Utilization: float64(p) * 0.25,
				DemandRatio: 1 + float64(c)*0.5,
				QoS:         float64(p*n + c),
				ClusterQoS:  0.125,
				Level:       p + c,
				Critical:    (p+c)%2 == 1,
			})
		}
	}
	frame := AppendDecideReq(nil, 9, 2, 100, obs)
	var want []byte
	want = append(want, frame[:decideReqBase-2]...)
	want = binary.LittleEndian.AppendUint16(want, k*n)
	for p := 0; p < k; p++ {
		single := AppendDecideReq(nil, 9, 2, 100, obs[p*n:(p+1)*n])
		want = append(want, single[decideReqBase:]...)
	}
	if string(frame) != string(want) {
		t.Fatalf("multi-period frame is not the concatenation of its periods:\n got %x\nwant %x", frame, want)
	}
	var dreq DecideReq
	if err := ParseDecideReq(frame, &dreq); err != nil {
		t.Fatalf("ParseDecideReq: %v", err)
	}
	if len(dreq.Obs) != k*n {
		t.Fatalf("parsed %d observations, want %d", len(dreq.Obs), k*n)
	}
	for i, o := range dreq.Obs {
		if !f64Eq(o.Utilization, obs[i].Utilization) || o.Level != obs[i].Level || o.Critical != obs[i].Critical {
			t.Fatalf("obs %d round-trip mismatch: got %+v, want %+v", i, o, obs[i])
		}
	}
}
