// Package wire is the compact binary protocol the decision server speaks
// alongside HTTP/JSON — the "short communication interface" the paper's
// latency claim leans on, applied to the serving tier.
//
// BENCH_pr4 showed the modeled hardware backend answering in ~200 ns while
// the end-to-end HTTP/JSON p50 sat at ~2.3 ms: the communication
// interface, not the policy, was the bottleneck. This package replaces it
// with length-prefixed fixed-layout frames over persistent multiplexed TCP
// connections:
//
//   - every frame is a 16-byte CRC-guarded header followed by a
//     little-endian fixed-layout payload and a CRC32 payload trailer — no
//     field names, no escaping, no variable-width integers, so encode and
//     decode are straight-line copies that allocate nothing after warm-up;
//     the payload trailer means a corrupted byte anywhere in the frame is
//     detected instead of silently decoding into a divergent decision
//     (the property the chaos harness's byte-identity invariant rests on);
//   - the header carries a version byte (rejected before anything else is
//     trusted), a frame type, a request id echoed in the response (so
//     many device sessions can multiplex one connection and pipeline
//     requests), and the payload length, all guarded by a CRC32 so a
//     desynchronized or corrupted stream is detected at the frame
//     boundary instead of being misparsed as a giant length prefix;
//   - payload decoders validate exact sizes and canonical encodings and
//     return typed errors (never panic, never over-read) — the contract
//     pinned by FuzzWireDecode and the round-trip property test.
//
// Layouts (all integers little-endian, floats IEEE-754 bit patterns; every
// frame is header | payload | crc32(payload) u32):
//
//	header    version u8 | type u8 | reserved u16 (=0) | req_id u32 |
//	          payload_len u32 | crc32(bytes 0..11) u32
//	create    epsilon f64 | epsilon_min f64 | epsilon_decay f64 | seed u64
//	createOK  handle u64 | epoch u32 | clusters u16 | num_levels u16 × clusters
//	decide    handle u64 | epoch u32 | seq u64 | count u16 |
//	          obs × count, each:
//	          utilization f64 | demand_ratio f64 | qos f64 |
//	          cluster_qos f64 | critical u8 (0/1) | level u16
//	decideOK  count u16 | level u16 × count
//	reward    handle u64 | reward f64 [| epoch u32 | seq u64]
//	rewardOK  decisions u64 | rewards u64 | mean_reward f64 | epsilon f64
//	close     handle u64
//	closeOK   same as rewardOK
//	resume    create | eps_now f64 | seq u64 | decisions u64 | rewards u64 |
//	          reward_sum f64 | rng u64 × 4 | clusters u16 |
//	          (prev_demand f64 | last_level u16) × clusters
//	resumeOK  same as createOK
//	error     code u16 | backoff_ms u32 | message bytes
//
// The decide epoch identifies the server incarnation that issued the
// session handle: after a restart every live handle is stale, and the
// epoch mismatch surfaces as CodeUnknownSession instead of silently
// hitting a recycled handle. The decide seq is the session's decision
// sequence number; a retry after a lost response carries the same seq and
// the server answers from its replay cache instead of computing a second,
// divergent decision. The resume frame re-creates a session from the
// client's last acked state after the server lost it (restart or TTL
// reaping).
//
// The decide count is K×clusters for a multi-period frame: one frame may
// carry K consecutive control periods' observations, period by period
// (period 0's clusters first), and the decideOK answers with K×clusters
// levels in the same order. Seq names the first period; the frame consumes
// K sequence numbers. count must be a positive multiple of the session's
// cluster count — zero is rejected at parse time, a non-multiple by the
// serve layer.
//
// The package is dependency-free (standard library only); the serve layer
// owns the mapping between wire frames and sessions.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Version is the protocol version this package encodes and accepts.
	// v2 added the payload CRC trailer, the decide epoch+seq, the createOK
	// epoch, the error-frame backoff hint, and the resume frames.
	Version = 2
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 16
	// TrailerSize is the payload CRC32 trailer length appended after every
	// payload.
	TrailerSize = 4
	// MaxPayload bounds the payload length a header may declare; larger
	// prefixes are rejected before any payload byte is read, so a corrupt
	// or hostile length can never drive an oversized allocation or
	// over-read.
	MaxPayload = 1 << 20
)

// Frame types. Requests flow client→server, *OK responses and TError flow
// server→client; the response echoes the request's id.
const (
	TError    byte = 1
	TCreate   byte = 2
	TCreateOK byte = 3
	TDecide   byte = 4
	TDecideOK byte = 5
	TReward   byte = 6
	TRewardOK byte = 7
	TClose    byte = 8
	TCloseOK  byte = 9
	TResume   byte = 10
	TResumeOK byte = 11
)

// ValidType reports whether t is a known frame type.
func ValidType(t byte) bool { return t >= TError && t <= TResumeOK }

// Error codes carried by TError frames, mirroring the HTTP status mapping.
const (
	CodeBadRequest    uint16 = 1
	CodeNoSession     uint16 = 2
	CodeSessionClosed uint16 = 3
	CodeServerClosed  uint16 = 4
	CodeOverloaded    uint16 = 5
	CodeInternal      uint16 = 6
	// CodeUnknownSession: the handle/epoch pair names a session this server
	// incarnation does not know (restart or TTL reaping). Retryable after a
	// resume — the client re-creates the session from its last acked state.
	CodeUnknownSession uint16 = 7
)

// Typed decode errors. Decoders wrap these with context via %w, so callers
// classify with errors.Is and fuzzing can assert that every failure is one
// of them.
var (
	// ErrShortHeader: fewer than HeaderSize bytes where a header belongs.
	ErrShortHeader = errors.New("wire: short header")
	// ErrBadCRC: the header checksum does not cover its bytes — a
	// desynchronized stream or corruption.
	ErrBadCRC = errors.New("wire: header CRC mismatch")
	// ErrBadVersion: the version byte is not Version.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrBadType: the frame type byte names no known frame.
	ErrBadType = errors.New("wire: unknown frame type")
	// ErrOversized: the declared payload length exceeds MaxPayload.
	ErrOversized = errors.New("wire: oversized payload length")
	// ErrTruncated: the payload is shorter than its layout requires.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrBadPayload: the payload is structurally invalid (trailing bytes,
	// non-canonical bool, nonzero reserved field).
	ErrBadPayload = errors.New("wire: malformed payload")
)

// Header is the decoded frame header.
type Header struct {
	Version byte
	Type    byte
	ReqID   uint32
	Len     uint32
}

// PutHeader encodes a header for a payloadLen-byte payload of type typ into
// buf[:HeaderSize], computing the guard CRC. buf must hold at least
// HeaderSize bytes.
func PutHeader(buf []byte, typ byte, reqID uint32, payloadLen int) {
	_ = buf[HeaderSize-1]
	buf[0] = Version
	buf[1] = typ
	buf[2], buf[3] = 0, 0
	binary.LittleEndian.PutUint32(buf[4:8], reqID)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(buf[:12]))
}

// ParseHeader decodes and validates buf[:HeaderSize]. The CRC is checked
// before any field is interpreted, so a corrupted version, type, or length
// surfaces as ErrBadCRC rather than a misparse.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrShortHeader, len(buf))
	}
	if got, want := binary.LittleEndian.Uint32(buf[12:16]), crc32.ChecksumIEEE(buf[:12]); got != want {
		return Header{}, fmt.Errorf("%w: stored %#08x, computed %#08x", ErrBadCRC, got, want)
	}
	h := Header{
		Version: buf[0],
		Type:    buf[1],
		ReqID:   binary.LittleEndian.Uint32(buf[4:8]),
		Len:     binary.LittleEndian.Uint32(buf[8:12]),
	}
	if h.Version != Version {
		return h, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, h.Version, Version)
	}
	if buf[2] != 0 || buf[3] != 0 {
		return h, fmt.Errorf("%w: nonzero reserved header bytes", ErrBadPayload)
	}
	if !ValidType(h.Type) {
		return h, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	if h.Len > MaxPayload {
		return h, fmt.Errorf("%w: %d bytes (max %d)", ErrOversized, h.Len, MaxPayload)
	}
	return h, nil
}

var zeroHeader [HeaderSize]byte

// BeginFrame resets dst and reserves header space; append the payload to
// the returned slice, then seal it with FinishFrame. The pattern reuses
// the caller's buffer, so a warmed connection encodes frames with zero
// allocations.
func BeginFrame(dst []byte) []byte {
	return append(dst[:0], zeroHeader[:]...)
}

// FinishFrame writes the header (with CRC) over the space BeginFrame
// reserved, then appends the payload CRC32 trailer, for a frame of type
// typ answering reqID. buf must have come from BeginFrame plus payload
// appends. The trailer guards the payload bytes the header CRC does not
// cover, so corruption anywhere in the frame is detected at decode.
func FinishFrame(buf []byte, typ byte, reqID uint32) []byte {
	PutHeader(buf[:HeaderSize], typ, reqID, len(buf)-HeaderSize)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[HeaderSize:]))
}

// ReadFrame reads one frame from r: the header into *hdr, the payload into
// payload (grown only when capacity is short, otherwise reused), then the
// CRC32 trailer, which is verified against the payload before anything is
// returned. It returns the possibly regrown payload slice so callers can
// keep it as their scratch. The header is validated — including the
// MaxPayload bound — before any payload byte is read.
func ReadFrame(r io.Reader, hdr *[HeaderSize]byte, payload []byte) (Header, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, payload, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return h, payload, err
	}
	// Payload and trailer arrive in a single read into the shared scratch;
	// reading the trailer into a local array would force it to escape
	// through the io.Reader interface and cost an allocation per frame.
	need := int(h.Len) + TrailerSize
	if cap(payload) < need {
		payload = make([]byte, need)
	}
	payload = payload[:need]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return h, payload, err
	}
	got := binary.LittleEndian.Uint32(payload[h.Len:])
	payload = payload[:h.Len]
	if want := crc32.ChecksumIEEE(payload); got != want {
		return h, payload, fmt.Errorf("%w: payload trailer stored %#08x, computed %#08x", ErrBadCRC, got, want)
	}
	return h, payload, nil
}

// Obs is the wire form of one cluster's telemetry for one control period —
// field-for-field the serve layer's Observation, encoded as a fixed
// 35-byte record.
type Obs struct {
	Utilization float64
	DemandRatio float64
	QoS         float64
	ClusterQoS  float64
	Critical    bool
	Level       int
}

const obsSize = 4*8 + 1 + 2

// CreateReq asks the server to open a device session.
type CreateReq struct {
	Epsilon      float64
	EpsilonMin   float64
	EpsilonDecay float64
	Seed         uint64
}

const createReqSize = 4 * 8

// AppendCreateReq appends r's payload encoding to dst.
func AppendCreateReq(dst []byte, r CreateReq) []byte {
	dst = appendF64(dst, r.Epsilon)
	dst = appendF64(dst, r.EpsilonMin)
	dst = appendF64(dst, r.EpsilonDecay)
	return binary.LittleEndian.AppendUint64(dst, r.Seed)
}

// ParseCreateReq decodes p into r.
func ParseCreateReq(p []byte, r *CreateReq) error {
	if err := exactLen(p, createReqSize); err != nil {
		return err
	}
	r.Epsilon = getF64(p[0:])
	r.EpsilonMin = getF64(p[8:])
	r.EpsilonDecay = getF64(p[16:])
	r.Seed = binary.LittleEndian.Uint64(p[24:])
	return nil
}

// CreateOK answers a create (and a resume): the session handle, the
// issuing server incarnation's epoch, and the served chip's per-cluster
// OPP counts.
type CreateOK struct {
	Handle    uint64
	Epoch     uint32
	NumLevels []int
}

const createOKBase = 8 + 4 + 2

// AppendCreateOK appends the payload encoding to dst.
func AppendCreateOK(dst []byte, handle uint64, epoch uint32, numLevels []int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, handle)
	dst = binary.LittleEndian.AppendUint32(dst, epoch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(numLevels)))
	for _, n := range numLevels {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(n))
	}
	return dst
}

// ParseCreateOK decodes p into r, reusing r.NumLevels' backing array.
func ParseCreateOK(p []byte, r *CreateOK) error {
	if len(p) < createOKBase {
		return fmt.Errorf("%w: createOK needs %d bytes, got %d", ErrTruncated, createOKBase, len(p))
	}
	r.Handle = binary.LittleEndian.Uint64(p[0:])
	r.Epoch = binary.LittleEndian.Uint32(p[8:])
	n := int(binary.LittleEndian.Uint16(p[12:]))
	if err := exactLen(p, createOKBase+2*n); err != nil {
		return err
	}
	r.NumLevels = fitInts(r.NumLevels, n)
	for i := 0; i < n; i++ {
		r.NumLevels[i] = int(binary.LittleEndian.Uint16(p[createOKBase+2*i:]))
	}
	return nil
}

// DecideReq carries one or more control periods' observations for a
// session (len(Obs) = K×clusters, period by period). Epoch names the
// server incarnation the handle came from; Seq is the first period's
// decision sequence number (see the package comment). Seq 0 is the legacy
// no-dedup path.
type DecideReq struct {
	Handle uint64
	Epoch  uint32
	Seq    uint64
	Obs    []Obs
}

const decideReqBase = 8 + 4 + 8 + 2

// AppendDecideReq appends the payload encoding to dst. Critical encodes as
// 0/1; Level as its low 16 bits (the server validates range).
func AppendDecideReq(dst []byte, handle uint64, epoch uint32, seq uint64, obs []Obs) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, handle)
	dst = binary.LittleEndian.AppendUint32(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(obs)))
	for i := range obs {
		o := &obs[i]
		dst = appendF64(dst, o.Utilization)
		dst = appendF64(dst, o.DemandRatio)
		dst = appendF64(dst, o.QoS)
		dst = appendF64(dst, o.ClusterQoS)
		if o.Critical {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(o.Level))
	}
	return dst
}

// ParseDecideReq decodes p into r, reusing r.Obs' backing array. The
// critical byte must be canonical (0 or 1) so encoding is bijective.
func ParseDecideReq(p []byte, r *DecideReq) error {
	if len(p) < decideReqBase {
		return fmt.Errorf("%w: decide needs %d bytes, got %d", ErrTruncated, decideReqBase, len(p))
	}
	r.Handle = binary.LittleEndian.Uint64(p[0:])
	r.Epoch = binary.LittleEndian.Uint32(p[8:])
	r.Seq = binary.LittleEndian.Uint64(p[12:])
	n := int(binary.LittleEndian.Uint16(p[20:]))
	if n == 0 {
		return fmt.Errorf("%w: decide carries no observations", ErrBadPayload)
	}
	// Bound count before the size product: a hostile count must surface as
	// a payload error, never as arithmetic past MaxPayload (or, on a
	// 32-bit int, an overflowed expected length).
	if n > (MaxPayload-decideReqBase)/obsSize {
		return fmt.Errorf("%w: decide count %d exceeds max payload", ErrBadPayload, n)
	}
	if err := exactLen(p, decideReqBase+obsSize*n); err != nil {
		return err
	}
	r.Obs = fitObs(r.Obs, n)
	for i := 0; i < n; i++ {
		rec := p[decideReqBase+obsSize*i:]
		o := &r.Obs[i]
		o.Utilization = getF64(rec[0:])
		o.DemandRatio = getF64(rec[8:])
		o.QoS = getF64(rec[16:])
		o.ClusterQoS = getF64(rec[24:])
		switch rec[32] {
		case 0:
			o.Critical = false
		case 1:
			o.Critical = true
		default:
			return fmt.Errorf("%w: critical byte %d (want 0 or 1)", ErrBadPayload, rec[32])
		}
		o.Level = int(binary.LittleEndian.Uint16(rec[33:]))
	}
	return nil
}

// DecideOK carries the chosen OPP level per observation — K×clusters
// levels for a K-period decide, in the request's period-by-period order.
type DecideOK struct {
	Levels []int
}

// AppendDecideOK appends the payload encoding to dst.
func AppendDecideOK(dst []byte, levels []int) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(levels)))
	for _, l := range levels {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(l))
	}
	return dst
}

// ParseDecideOK decodes p into r, reusing r.Levels' backing array.
func ParseDecideOK(p []byte, r *DecideOK) error {
	if len(p) < 2 {
		return fmt.Errorf("%w: decideOK needs 2 bytes, got %d", ErrTruncated, len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[0:]))
	if n == 0 {
		return fmt.Errorf("%w: decideOK carries no levels", ErrBadPayload)
	}
	if err := exactLen(p, 2+2*n); err != nil {
		return err
	}
	r.Levels = fitInts(r.Levels, n)
	for i := 0; i < n; i++ {
		r.Levels[i] = int(binary.LittleEndian.Uint16(p[2+2*i:]))
	}
	return nil
}

// RewardReq reports a device-computed reward for a session. Epoch/Seq
// extend the decide dedup contract to rewards: Epoch names the server
// incarnation the handle came from, Seq is the session's reward sequence
// number (the count of rewards the client has had acked, plus one), and a
// retry after a lost ack carries the same Seq so the server answers from
// the ledger instead of double-counting — and, with online learning on,
// instead of double-applying a Q-update. Seq 0 is the legacy no-dedup
// path; the 16-byte v2 payload without the epoch/seq tail still parses
// (as Epoch 0, Seq 0) so old clients keep working.
type RewardReq struct {
	Handle uint64
	Reward float64
	Epoch  uint32
	Seq    uint64
}

const (
	rewardReqSizeLegacy = 16
	rewardReqSize       = rewardReqSizeLegacy + 4 + 8
)

// AppendRewardReq appends the payload encoding to dst (the tagged 28-byte
// form).
func AppendRewardReq(dst []byte, r RewardReq) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.Handle)
	dst = appendF64(dst, r.Reward)
	dst = binary.LittleEndian.AppendUint32(dst, r.Epoch)
	return binary.LittleEndian.AppendUint64(dst, r.Seq)
}

// ParseRewardReq decodes p into r. Both the tagged 28-byte layout and the
// legacy 16-byte layout (Epoch/Seq zero) are accepted.
func ParseRewardReq(p []byte, r *RewardReq) error {
	switch len(p) {
	case rewardReqSizeLegacy:
		r.Epoch, r.Seq = 0, 0
	case rewardReqSize:
		r.Epoch = binary.LittleEndian.Uint32(p[16:])
		r.Seq = binary.LittleEndian.Uint64(p[20:])
	default:
		return exactLen(p, rewardReqSize)
	}
	r.Handle = binary.LittleEndian.Uint64(p[0:])
	r.Reward = getF64(p[8:])
	return nil
}

// CloseReq closes a session.
type CloseReq struct {
	Handle uint64
}

const closeReqSize = 8

// AppendCloseReq appends the payload encoding to dst.
func AppendCloseReq(dst []byte, r CloseReq) []byte {
	return binary.LittleEndian.AppendUint64(dst, r.Handle)
}

// ParseCloseReq decodes p into r.
func ParseCloseReq(p []byte, r *CloseReq) error {
	if err := exactLen(p, closeReqSize); err != nil {
		return err
	}
	r.Handle = binary.LittleEndian.Uint64(p[0:])
	return nil
}

// Stats is the per-session ledger returned by reward and close frames.
type Stats struct {
	Decisions  uint64
	Rewards    uint64
	MeanReward float64
	Epsilon    float64
}

const statsSize = 4 * 8

// AppendStats appends the payload encoding to dst.
func AppendStats(dst []byte, s Stats) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.Decisions)
	dst = binary.LittleEndian.AppendUint64(dst, s.Rewards)
	dst = appendF64(dst, s.MeanReward)
	return appendF64(dst, s.Epsilon)
}

// ParseStats decodes p into s.
func ParseStats(p []byte, s *Stats) error {
	if err := exactLen(p, statsSize); err != nil {
		return err
	}
	s.Decisions = binary.LittleEndian.Uint64(p[0:])
	s.Rewards = binary.LittleEndian.Uint64(p[8:])
	s.MeanReward = getF64(p[16:])
	s.Epsilon = getF64(p[24:])
	return nil
}

// ErrorFrame is the typed failure answer. BackoffMs is the server's retry
// hint (how long the client should wait before retrying, in milliseconds;
// 0 means no hint) — meaningful for CodeOverloaded, where it tracks the
// batcher's observed queue sojourn. Msg aliases the payload buffer — copy
// it before the next frame read if it must outlive the buffer.
type ErrorFrame struct {
	Code      uint16
	BackoffMs uint32
	Msg       []byte
}

const errorFrameBase = 2 + 4

// AppendError appends the payload encoding to dst.
func AppendError(dst []byte, code uint16, backoffMs uint32, msg string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, code)
	dst = binary.LittleEndian.AppendUint32(dst, backoffMs)
	return append(dst, msg...)
}

// ParseError decodes p into e. Msg is a zero-copy view into p.
func ParseError(p []byte, e *ErrorFrame) error {
	if len(p) < errorFrameBase {
		return fmt.Errorf("%w: error frame needs %d bytes, got %d", ErrTruncated, errorFrameBase, len(p))
	}
	e.Code = binary.LittleEndian.Uint16(p[0:])
	e.BackoffMs = binary.LittleEndian.Uint32(p[2:])
	e.Msg = p[errorFrameBase:]
	return nil
}

// ResumeReq re-creates a session from the client's last acked state after
// the server lost it (restart or TTL reaping). Opts are the original
// session options; EpsNow is the current decayed exploration rate; Rng is
// the exploration generator's exported state (all-zero means "reseed from
// Opts.Seed"); Seq/Decisions/Rewards/RewardSum restore the ledger;
// PrevDemand is the per-cluster demand-trend history; LastLevels is the
// decision the client last acked (the replay cache for Seq), meaningful
// only when Seq > 0.
type ResumeReq struct {
	Opts       CreateReq
	EpsNow     float64
	Seq        uint64
	Decisions  uint64
	Rewards    uint64
	RewardSum  float64
	Rng        [4]uint64
	PrevDemand []float64
	LastLevels []int
}

const (
	resumeReqBase    = createReqSize + 8 + 8 + 8 + 8 + 8 + 4*8 + 2
	resumeClusterRec = 8 + 2
)

// AppendResumeReq appends the payload encoding to dst. PrevDemand and
// LastLevels must have equal length (the cluster count).
func AppendResumeReq(dst []byte, r *ResumeReq) []byte {
	dst = AppendCreateReq(dst, r.Opts)
	dst = appendF64(dst, r.EpsNow)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.Decisions)
	dst = binary.LittleEndian.AppendUint64(dst, r.Rewards)
	dst = appendF64(dst, r.RewardSum)
	for _, w := range r.Rng {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.PrevDemand)))
	for i, d := range r.PrevDemand {
		dst = appendF64(dst, d)
		lvl := 0
		if i < len(r.LastLevels) {
			lvl = r.LastLevels[i]
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(lvl))
	}
	return dst
}

// ParseResumeReq decodes p into r, reusing the slices' backing arrays.
func ParseResumeReq(p []byte, r *ResumeReq) error {
	if len(p) < resumeReqBase {
		return fmt.Errorf("%w: resume needs %d bytes, got %d", ErrTruncated, resumeReqBase, len(p))
	}
	if err := ParseCreateReq(p[:createReqSize], &r.Opts); err != nil {
		return err
	}
	off := createReqSize
	r.EpsNow = getF64(p[off:])
	r.Seq = binary.LittleEndian.Uint64(p[off+8:])
	r.Decisions = binary.LittleEndian.Uint64(p[off+16:])
	r.Rewards = binary.LittleEndian.Uint64(p[off+24:])
	r.RewardSum = getF64(p[off+32:])
	for i := range r.Rng {
		r.Rng[i] = binary.LittleEndian.Uint64(p[off+40+8*i:])
	}
	n := int(binary.LittleEndian.Uint16(p[resumeReqBase-2:]))
	if err := exactLen(p, resumeReqBase+resumeClusterRec*n); err != nil {
		return err
	}
	r.PrevDemand = fitF64s(r.PrevDemand, n)
	r.LastLevels = fitInts(r.LastLevels, n)
	for i := 0; i < n; i++ {
		rec := p[resumeReqBase+resumeClusterRec*i:]
		r.PrevDemand[i] = getF64(rec[0:])
		r.LastLevels[i] = int(binary.LittleEndian.Uint16(rec[8:]))
	}
	return nil
}

// exactLen distinguishes a short payload (ErrTruncated) from trailing
// garbage (ErrBadPayload).
func exactLen(p []byte, want int) error {
	if len(p) < want {
		return fmt.Errorf("%w: %d bytes, layout needs %d", ErrTruncated, len(p), want)
	}
	if len(p) > want {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(p)-want)
	}
	return nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func getF64(p []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func fitInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func fitObs(s []Obs, n int) []Obs {
	if cap(s) < n {
		return make([]Obs, n)
	}
	return s[:n]
}

func fitF64s(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
