package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"rlpm/internal/rng"
)

// randObs draws one observation record with occasional special float
// values, keeping Level/Critical inside their canonical wire ranges.
func randObs(r *rng.Rand) Obs {
	f := func() float64 {
		switch r.Intn(10) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		default:
			return r.Float64()*4 - 2
		}
	}
	return Obs{
		Utilization: f(),
		DemandRatio: f(),
		QoS:         f(),
		ClusterQoS:  f(),
		Critical:    r.Intn(2) == 1,
		Level:       r.Intn(1 << 16),
	}
}

// f64Eq compares floats by bit pattern, so NaN round-trips count as equal.
func f64Eq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestHeaderRoundTrip(t *testing.T) {
	var buf [HeaderSize]byte
	for _, typ := range []byte{TError, TCreate, TCreateOK, TDecide, TDecideOK, TReward, TRewardOK, TClose, TCloseOK, TResume, TResumeOK} {
		PutHeader(buf[:], typ, 0xDEADBEEF, 12345)
		h, err := ParseHeader(buf[:])
		if err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
		if h.Version != Version || h.Type != typ || h.ReqID != 0xDEADBEEF || h.Len != 12345 {
			t.Fatalf("type %d: decoded %+v", typ, h)
		}
	}
}

func TestParseHeaderTypedErrors(t *testing.T) {
	good := func() []byte {
		var b [HeaderSize]byte
		PutHeader(b[:], TDecide, 7, 100)
		return b[:]
	}
	reseal := func(b []byte) []byte { // recompute the CRC after a field edit
		binary.LittleEndian.PutUint32(b[12:16], crc32IEEE(b[:12]))
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short", good()[:HeaderSize-1], ErrShortHeader},
		{"empty", nil, ErrShortHeader},
		{"flipped version bit", flip(good(), 0), ErrBadCRC},
		{"flipped length bit", flip(good(), 9), ErrBadCRC},
		{"flipped crc bit", flip(good(), 13), ErrBadCRC},
		{"bad version", reseal(set(good(), 0, 99)), ErrBadVersion},
		{"bad type", reseal(set(good(), 1, 200)), ErrBadType},
		{"zero type", reseal(set(good(), 1, 0)), ErrBadType},
		{"reserved byte", reseal(set(good(), 2, 1)), ErrBadPayload},
		{"oversized", reseal(putLen(good(), MaxPayload+1)), ErrOversized},
	}
	for _, c := range cases {
		if _, err := ParseHeader(c.buf); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	// MaxPayload itself is legal.
	if _, err := ParseHeader(reseal(putLen(good(), MaxPayload))); err != nil {
		t.Errorf("len == MaxPayload rejected: %v", err)
	}
}

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func flip(b []byte, i int) []byte        { b[i] ^= 0x40; return b }
func set(b []byte, i int, v byte) []byte { b[i] = v; return b }
func putLen(b []byte, n uint32) []byte {
	binary.LittleEndian.PutUint32(b[8:12], n)
	return b
}

func TestPayloadRoundTrips(t *testing.T) {
	r := rng.New(99)
	var buf []byte
	for iter := 0; iter < 200; iter++ {
		creq := CreateReq{Epsilon: r.Float64(), EpsilonMin: r.Float64() / 4, EpsilonDecay: r.Float64(), Seed: r.Uint64()}
		buf = AppendCreateReq(buf[:0], creq)
		var creq2 CreateReq
		if err := ParseCreateReq(buf, &creq2); err != nil {
			t.Fatalf("create: %v", err)
		}
		if creq2 != creq {
			t.Fatalf("create round trip %+v != %+v", creq2, creq)
		}

		nl := make([]int, 1+r.Intn(6))
		for i := range nl {
			nl[i] = r.Intn(1 << 16)
		}
		epoch := uint32(r.Intn(1 << 31))
		buf = AppendCreateOK(buf[:0], r.Uint64(), epoch, nl)
		var cok CreateOK
		if err := ParseCreateOK(buf, &cok); err != nil {
			t.Fatalf("createOK: %v", err)
		}
		if cok.Epoch != epoch || len(cok.NumLevels) != len(nl) {
			t.Fatalf("createOK epoch %d levels %v != epoch %d levels %v", cok.Epoch, cok.NumLevels, epoch, nl)
		}
		for i := range nl {
			if cok.NumLevels[i] != nl[i] {
				t.Fatalf("createOK levels %v != %v", cok.NumLevels, nl)
			}
		}

		obs := make([]Obs, 1+r.Intn(5))
		for i := range obs {
			obs[i] = randObs(r)
		}
		handle := r.Uint64()
		seq := r.Uint64()
		buf = AppendDecideReq(buf[:0], handle, epoch, seq, obs)
		var dreq DecideReq
		if err := ParseDecideReq(buf, &dreq); err != nil {
			t.Fatalf("decide: %v", err)
		}
		if dreq.Handle != handle || dreq.Epoch != epoch || dreq.Seq != seq || len(dreq.Obs) != len(obs) {
			t.Fatalf("decide round trip handle/epoch/seq/count mismatch")
		}
		for i, o := range obs {
			g := dreq.Obs[i]
			if !f64Eq(g.Utilization, o.Utilization) || !f64Eq(g.DemandRatio, o.DemandRatio) ||
				!f64Eq(g.QoS, o.QoS) || !f64Eq(g.ClusterQoS, o.ClusterQoS) ||
				g.Critical != o.Critical || g.Level != o.Level {
				t.Fatalf("obs %d round trip %+v != %+v", i, g, o)
			}
		}

		levels := make([]int, len(obs))
		for i := range levels {
			levels[i] = r.Intn(1 << 16)
		}
		buf = AppendDecideOK(buf[:0], levels)
		var dok DecideOK
		if err := ParseDecideOK(buf, &dok); err != nil {
			t.Fatalf("decideOK: %v", err)
		}
		for i := range levels {
			if dok.Levels[i] != levels[i] {
				t.Fatalf("decideOK %v != %v", dok.Levels, levels)
			}
		}

		rreq := RewardReq{Handle: r.Uint64(), Reward: r.Float64()*10 - 5,
			Epoch: uint32(r.Uint64()), Seq: r.Uint64()}
		buf = AppendRewardReq(buf[:0], rreq)
		var rreq2 RewardReq
		if err := ParseRewardReq(buf, &rreq2); err != nil {
			t.Fatalf("reward: %v", err)
		}
		if rreq2 != rreq {
			t.Fatalf("reward round trip %+v != %+v", rreq2, rreq)
		}

		st := Stats{Decisions: r.Uint64(), Rewards: r.Uint64(), MeanReward: r.Float64(), Epsilon: r.Float64()}
		buf = AppendStats(buf[:0], st)
		var st2 Stats
		if err := ParseStats(buf, &st2); err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st2 != st {
			t.Fatalf("stats round trip %+v != %+v", st2, st)
		}

		buf = AppendError(buf[:0], CodeNoSession, 250, "no such session")
		var ef ErrorFrame
		if err := ParseError(buf, &ef); err != nil {
			t.Fatalf("error frame: %v", err)
		}
		if ef.Code != CodeNoSession || ef.BackoffMs != 250 || string(ef.Msg) != "no such session" {
			t.Fatalf("error frame round trip %+v", ef)
		}

		clusters := 1 + r.Intn(4)
		rres := ResumeReq{
			Opts:      creq,
			EpsNow:    r.Float64(),
			Seq:       r.Uint64(),
			Decisions: r.Uint64(),
			Rewards:   r.Uint64(),
			RewardSum: r.Float64()*20 - 10,
		}
		for i := range rres.Rng {
			rres.Rng[i] = r.Uint64()
		}
		for i := 0; i < clusters; i++ {
			rres.PrevDemand = append(rres.PrevDemand, r.Float64()*2)
			rres.LastLevels = append(rres.LastLevels, r.Intn(1<<16))
		}
		buf = AppendResumeReq(buf[:0], &rres)
		var rres2 ResumeReq
		if err := ParseResumeReq(buf, &rres2); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if rres2.Opts != rres.Opts || rres2.Seq != rres.Seq || rres2.Rng != rres.Rng ||
			rres2.Decisions != rres.Decisions || rres2.Rewards != rres.Rewards ||
			!f64Eq(rres2.EpsNow, rres.EpsNow) || !f64Eq(rres2.RewardSum, rres.RewardSum) {
			t.Fatalf("resume round trip %+v != %+v", rres2, rres)
		}
		for i := 0; i < clusters; i++ {
			if !f64Eq(rres2.PrevDemand[i], rres.PrevDemand[i]) || rres2.LastLevels[i] != rres.LastLevels[i] {
				t.Fatalf("resume cluster %d round trip %+v != %+v", i, rres2, rres)
			}
		}
	}
}

func TestParseTypedErrors(t *testing.T) {
	// Truncations of every fixed layout.
	var creq CreateReq
	if err := ParseCreateReq(make([]byte, createReqSize-1), &creq); !errors.Is(err, ErrTruncated) {
		t.Errorf("short create: %v", err)
	}
	if err := ParseCreateReq(make([]byte, createReqSize+1), &creq); !errors.Is(err, ErrBadPayload) {
		t.Errorf("long create: %v", err)
	}
	var dreq DecideReq
	if err := ParseDecideReq(nil, &dreq); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty decide: %v", err)
	}
	// Count says 3 observations, payload holds 1.
	p := AppendDecideReq(nil, 1, 1, 1, make([]Obs, 1))
	binary.LittleEndian.PutUint16(p[decideReqBase-2:], 3)
	if err := ParseDecideReq(p, &dreq); !errors.Is(err, ErrTruncated) {
		t.Errorf("undersupplied decide: %v", err)
	}
	// Count says 1, payload holds 2 — trailing bytes.
	p = AppendDecideReq(nil, 1, 1, 1, make([]Obs, 2))
	binary.LittleEndian.PutUint16(p[decideReqBase-2:], 1)
	if err := ParseDecideReq(p, &dreq); !errors.Is(err, ErrBadPayload) {
		t.Errorf("oversupplied decide: %v", err)
	}
	// Non-canonical critical byte.
	p = AppendDecideReq(nil, 1, 1, 1, make([]Obs, 1))
	p[decideReqBase+32] = 7
	if err := ParseDecideReq(p, &dreq); !errors.Is(err, ErrBadPayload) {
		t.Errorf("bad critical byte: %v", err)
	}
	var rres ResumeReq
	if err := ParseResumeReq(make([]byte, resumeReqBase-1), &rres); !errors.Is(err, ErrTruncated) {
		t.Errorf("short resume: %v", err)
	}
	p = AppendResumeReq(nil, &ResumeReq{PrevDemand: []float64{0.5}, LastLevels: []int{1}})
	binary.LittleEndian.PutUint16(p[resumeReqBase-2:], 3)
	if err := ParseResumeReq(p, &rres); !errors.Is(err, ErrTruncated) {
		t.Errorf("undersupplied resume: %v", err)
	}
	var dok DecideOK
	if err := ParseDecideOK([]byte{5}, &dok); !errors.Is(err, ErrTruncated) {
		t.Errorf("short decideOK: %v", err)
	}
	var ef ErrorFrame
	if err := ParseError([]byte{1}, &ef); !errors.Is(err, ErrTruncated) {
		t.Errorf("short error frame: %v", err)
	}
}

func TestFrameAssemblyAndReadFrame(t *testing.T) {
	obs := []Obs{{Utilization: 0.5, Level: 3}, {DemandRatio: 1.25, Critical: true}}
	var buf []byte
	buf = AppendDecideReq(BeginFrame(buf), 42, 3, 17, obs)
	buf = FinishFrame(buf, TDecide, 9)

	var hdr [HeaderSize]byte
	h, payload, err := ReadFrame(bytes.NewReader(buf), &hdr, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if h.Type != TDecide || h.ReqID != 9 || int(h.Len) != len(buf)-HeaderSize-TrailerSize {
		t.Fatalf("header %+v for a %d-byte frame", h, len(buf))
	}
	var dreq DecideReq
	if err := ParseDecideReq(payload, &dreq); err != nil {
		t.Fatalf("ParseDecideReq: %v", err)
	}
	if dreq.Handle != 42 || dreq.Epoch != 3 || dreq.Seq != 17 || len(dreq.Obs) != 2 || !dreq.Obs[1].Critical {
		t.Fatalf("decoded %+v", dreq)
	}

	// A truncated stream surfaces as unexpected EOF, not a hang or panic.
	if _, _, err := ReadFrame(bytes.NewReader(buf[:len(buf)-1]), &hdr, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v", err)
	}

	// A corrupted payload byte fails the trailer CRC — the guarantee that a
	// fault anywhere in the frame can never decode into a divergent
	// decision.
	corrupt := append([]byte(nil), buf...)
	corrupt[HeaderSize+5] ^= 0x10
	if _, _, err := ReadFrame(bytes.NewReader(corrupt), &hdr, nil); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted payload byte: %v, want ErrBadCRC", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(buf[:HeaderSize-2]), &hdr, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v", err)
	}

	// An oversized length prefix is rejected from the header alone: the
	// reader below would block forever if ReadFrame tried to read the
	// declared payload.
	var big [HeaderSize]byte
	big[0] = Version
	big[1] = TDecide
	binary.LittleEndian.PutUint32(big[8:12], MaxPayload+1)
	binary.LittleEndian.PutUint32(big[12:16], crc32IEEE(big[:12]))
	r := io.MultiReader(bytes.NewReader(big[:]), neverReader{})
	if _, _, err := ReadFrame(r, &hdr, nil); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized prefix: %v", err)
	}
}

// neverReader blocks ReadFrame forever if it is ever consulted — the test
// fails by deadlock timeout, proving over-read rather than asserting it.
type neverReader struct{}

func (neverReader) Read([]byte) (int, error) { select {} }

// TestRewardReqLegacyLayout pins the dual-size reward payload contract:
// the 16-byte pre-dedup layout still parses (Epoch/Seq zero), the tagged
// form is exactly 28 bytes, and any other size is rejected.
func TestRewardReqLegacyLayout(t *testing.T) {
	tagged := AppendRewardReq(nil, RewardReq{Handle: 0xfeed, Reward: -1.5, Epoch: 9, Seq: 42})
	if len(tagged) != 28 {
		t.Fatalf("tagged payload is %d bytes, want 28", len(tagged))
	}

	var legacy RewardReq
	if err := ParseRewardReq(tagged[:16], &legacy); err != nil {
		t.Fatalf("legacy 16-byte parse: %v", err)
	}
	if legacy.Handle != 0xfeed || legacy.Reward != -1.5 || legacy.Epoch != 0 || legacy.Seq != 0 {
		t.Fatalf("legacy parse = %+v, want handle/reward with zero epoch/seq", legacy)
	}

	for _, n := range []int{0, 8, 15, 17, 27} {
		var r RewardReq
		if err := ParseRewardReq(tagged[:n], &r); err == nil {
			t.Fatalf("%d-byte payload accepted", n)
		}
	}
	if err := ParseRewardReq(append(tagged, 0), &legacy); err == nil {
		t.Fatal("29-byte payload accepted")
	}
}
