package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// knownErr reports whether err chains to one of the package's typed decode
// errors — the only failures the decoder is allowed to produce.
func knownErr(err error) bool {
	for _, sentinel := range []error{
		ErrShortHeader, ErrBadCRC, ErrBadVersion, ErrBadType,
		ErrOversized, ErrTruncated, ErrBadPayload,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// reencode re-serializes the value a successful decode produced; canonical
// encoding means it must reproduce the payload byte-for-byte, which also
// proves the decoder read exactly the bytes it was given.
func reencode(t byte, p []byte) ([]byte, error) {
	switch t {
	case TCreate:
		var v CreateReq
		if err := ParseCreateReq(p, &v); err != nil {
			return nil, err
		}
		return AppendCreateReq(nil, v), nil
	case TCreateOK, TResumeOK:
		var v CreateOK
		if err := ParseCreateOK(p, &v); err != nil {
			return nil, err
		}
		return AppendCreateOK(nil, v.Handle, v.Epoch, v.NumLevels), nil
	case TDecide:
		var v DecideReq
		if err := ParseDecideReq(p, &v); err != nil {
			return nil, err
		}
		return AppendDecideReq(nil, v.Handle, v.Epoch, v.Seq, v.Obs), nil
	case TResume:
		var v ResumeReq
		if err := ParseResumeReq(p, &v); err != nil {
			return nil, err
		}
		return AppendResumeReq(nil, &v), nil
	case TDecideOK:
		var v DecideOK
		if err := ParseDecideOK(p, &v); err != nil {
			return nil, err
		}
		return AppendDecideOK(nil, v.Levels), nil
	case TReward:
		var v RewardReq
		if err := ParseRewardReq(p, &v); err != nil {
			return nil, err
		}
		out := AppendRewardReq(nil, v)
		// The legacy 16-byte layout decodes with a zero epoch/seq tail; its
		// canonical re-encode is the tagged form truncated back to the bytes
		// actually read.
		if len(p) == 16 {
			out = out[:16]
		}
		return out, nil
	case TRewardOK, TCloseOK:
		var v Stats
		if err := ParseStats(p, &v); err != nil {
			return nil, err
		}
		return AppendStats(nil, v), nil
	case TClose:
		var v CloseReq
		if err := ParseCloseReq(p, &v); err != nil {
			return nil, err
		}
		return AppendCloseReq(nil, v), nil
	case TError:
		var v ErrorFrame
		if err := ParseError(p, &v); err != nil {
			return nil, err
		}
		return AppendError(nil, v.Code, v.BackoffMs, string(v.Msg)), nil
	}
	return nil, errors.New("unreachable: ValidType admitted an unknown type")
}

// FuzzWireDecode throws arbitrary bytes at the full frame-decode pipeline:
// header parse, payload framing, and the per-type payload decoder. The
// invariants: never panic, never over-read (slices are exactly sized),
// every failure is a typed wire error, and every success re-encodes to the
// identical bytes.
func FuzzWireDecode(f *testing.F) {
	// Seed with one well-formed frame per type...
	seed := func(t byte, payload []byte) {
		f.Add(FinishFrame(append(BeginFrame(nil), payload...), t, 7))
	}
	seed(TCreate, AppendCreateReq(nil, CreateReq{Epsilon: 0.3, EpsilonDecay: 0.99, Seed: 11}))
	seed(TCreateOK, AppendCreateOK(nil, 5, 1, []int{3, 5}))
	seed(TDecide, AppendDecideReq(nil, 5, 1, 9, []Obs{{Utilization: 0.8, Level: 2}, {Critical: true}}))
	seed(TDecideOK, AppendDecideOK(nil, []int{1, 4}))
	seed(TReward, AppendRewardReq(nil, RewardReq{Handle: 5, Reward: -1.5, Epoch: 2, Seq: 9}))
	seed(TReward, AppendRewardReq(nil, RewardReq{Handle: 5, Reward: -1.5})[:16]) // legacy untagged layout
	seed(TRewardOK, AppendStats(nil, Stats{Decisions: 10, Rewards: 2, MeanReward: -0.5}))
	seed(TClose, AppendCloseReq(nil, CloseReq{Handle: 5}))
	seed(TError, AppendError(nil, CodeNoSession, 100, "gone"))
	seed(TResume, AppendResumeReq(nil, &ResumeReq{
		Opts:       CreateReq{Epsilon: 0.2, EpsilonDecay: 0.98, Seed: 4},
		EpsNow:     0.1,
		Seq:        12,
		Decisions:  12,
		Rewards:    3,
		RewardSum:  -4.5,
		Rng:        [4]uint64{1, 2, 3, 4},
		PrevDemand: []float64{0.5, 1.25},
		LastLevels: []int{2, 0},
	}))
	seed(TResumeOK, AppendCreateOK(nil, 6, 2, []int{3, 5}))
	// Multi-period decide: 2 periods × 2 clusters in one frame, plus the
	// malformed-count shapes the parser must reject — count=0, count
	// overstating the payload, and trailing bytes after the declared
	// observations.
	seed(TDecide, AppendDecideReq(nil, 5, 1, 9, []Obs{
		{Utilization: 0.8, Level: 2}, {Critical: true},
		{Utilization: 0.4, Level: 1}, {DemandRatio: 2},
	}))
	zeroCount := AppendDecideReq(nil, 5, 1, 9, []Obs{{Level: 1}})[:22]
	zeroCount[20], zeroCount[21] = 0, 0
	seed(TDecide, zeroCount)
	underCount := AppendDecideReq(nil, 5, 1, 9, []Obs{{Level: 1}})
	underCount[20] = 2
	seed(TDecide, underCount)
	seed(TDecide, append(AppendDecideReq(nil, 5, 1, 9, []Obs{{Level: 1}}), 0xAA))
	// ...and classic malformations: truncations, a bad version, a
	// corrupted CRC, an oversized length prefix.
	good := FinishFrame(AppendCloseReq(BeginFrame(nil), CloseReq{Handle: 1}), TClose, 1)
	f.Add(good[:HeaderSize-3])
	f.Add(good[:len(good)-2])
	bad := append([]byte(nil), good...)
	bad[0] = 9
	f.Add(bad)
	bad2 := append([]byte(nil), good...)
	bad2[13] ^= 0xFF
	f.Add(bad2)
	big := make([]byte, HeaderSize)
	big[0], big[1] = Version, TDecide
	binary.LittleEndian.PutUint32(big[8:12], MaxPayload+100)
	binary.LittleEndian.PutUint32(big[12:16], crc32.ChecksumIEEE(big[:12]))
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		var hdr [HeaderSize]byte
		h, payload, err := ReadFrame(bytes.NewReader(data), &hdr, nil)
		if err != nil {
			// IO truncation or a typed header error; nothing else.
			if !knownErr(err) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("ReadFrame returned an untyped error: %v", err)
			}
			return
		}
		if int(h.Len) != len(payload) || h.Len > MaxPayload {
			t.Fatalf("ReadFrame sized payload %d against header %d", len(payload), h.Len)
		}
		out, err := reencode(h.Type, payload)
		if err != nil {
			if !knownErr(err) {
				t.Fatalf("payload decoder returned an untyped error: %v", err)
			}
			return
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("type %d: re-encode diverged\n in: %x\nout: %x", h.Type, payload, out)
		}
	})
}
