package wire

import (
	"bytes"
	"testing"
)

// TestCodecAllocFree pins the binary decide path's codec at zero
// allocations per frame — the serving-tier extension of the PR-3
// discipline that made the simulation hot loop allocation-free. Encoding
// appends into a reused buffer; decoding reuses the request struct's
// backing arrays; frame reads reuse the payload scratch.
func TestCodecAllocFree(t *testing.T) {
	obs := []Obs{
		{Utilization: 0.7, DemandRatio: 1.1, QoS: 0.95, ClusterQoS: 0.9, Level: 3},
		{Utilization: 0.2, DemandRatio: 0.4, QoS: 0.95, ClusterQoS: 1.0, Critical: true, Level: 1},
	}
	levels := []int{2, 5}

	// Warm-up: grow every reused buffer to steady-state capacity.
	buf := FinishFrame(AppendDecideReq(BeginFrame(nil), 42, 1, 1, obs), TDecide, 1)
	var dreq DecideReq
	if err := ParseDecideReq(buf[HeaderSize:len(buf)-TrailerSize], &dreq); err != nil {
		t.Fatalf("warm-up decode: %v", err)
	}
	respBuf := FinishFrame(AppendDecideOK(BeginFrame(nil), levels), TDecideOK, 1)
	var dok DecideOK
	if err := ParseDecideOK(respBuf[HeaderSize:len(respBuf)-TrailerSize], &dok); err != nil {
		t.Fatalf("warm-up decode: %v", err)
	}

	if n := testing.AllocsPerRun(100, func() {
		buf = FinishFrame(AppendDecideReq(BeginFrame(buf), 42, 1, 1, obs), TDecide, 1)
		respBuf = FinishFrame(AppendDecideOK(BeginFrame(respBuf), levels), TDecideOK, 1)
	}); n != 0 {
		t.Fatalf("frame encode allocates %v times per frame, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		h, err := ParseHeader(buf)
		if err != nil || h.Type != TDecide {
			t.Fatal("header decode failed")
		}
		if err := ParseDecideReq(buf[HeaderSize:HeaderSize+int(h.Len)], &dreq); err != nil {
			t.Fatal(err)
		}
		if err := ParseDecideOK(respBuf[HeaderSize:len(respBuf)-TrailerSize], &dok); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("frame decode allocates %v times per frame, want 0", n)
	}
}

// TestReadFrameReusesPayload proves the streaming read path reaches zero
// allocations once the payload scratch has grown to frame size.
func TestReadFrameReusesPayload(t *testing.T) {
	frame := FinishFrame(AppendDecideReq(BeginFrame(nil), 7, 1, 1, make([]Obs, 4)), TDecide, 3)
	var hdr [HeaderSize]byte
	var payload []byte
	rd := bytes.NewReader(frame)
	var err error
	if _, payload, err = ReadFrame(rd, &hdr, payload); err != nil { // warm-up
		t.Fatalf("warm-up: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		rd.Reset(frame)
		_, payload, err = ReadFrame(rd, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadFrame allocates %v times per frame with a warm scratch, want 0", n)
	}
}

func BenchmarkEncodeDecideFrame(b *testing.B) {
	obs := make([]Obs, 2)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = FinishFrame(AppendDecideReq(BeginFrame(buf), 42, 1, 1, obs), TDecide, uint32(i))
	}
}

func BenchmarkDecodeDecideFrame(b *testing.B) {
	frame := FinishFrame(AppendDecideReq(BeginFrame(nil), 42, 1, 1, make([]Obs, 2)), TDecide, 1)
	var dreq DecideReq
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ParseDecideReq(frame[HeaderSize:len(frame)-TrailerSize], &dreq); err != nil {
			b.Fatal(err)
		}
	}
}
