// Command pmbench regenerates the paper's evaluation: every table and
// figure, selected by experiment id.
//
// Usage:
//
//	pmbench -exp t1            # Table 1: energy/QoS vs six governors
//	pmbench -exp t2            # Table 2: SW vs HW decision latency
//	pmbench -exp t3            # Table 3: FPGA resource estimates
//	pmbench -exp f2            # Fig. 2: learning convergence
//	pmbench -exp f3            # Fig. 3: energy & QoS bars
//	pmbench -exp f4            # Fig. 4: trace summary
//	pmbench -exp a1..a6        # ablations (state bins, precision, lambda, switch cost, algorithm, obs noise)
//	pmbench -exp oracle        # best-static-pin reference
//	pmbench -exp life          # battery-life projection per governor
//	pmbench -exp a5            # TD algorithm ablation
//	pmbench -exp symm          # symmetric 8-core chip evaluation
//	pmbench -exp gpu           # three-domain (LITTLE+big+GPU) evaluation
//	pmbench -exp seeds         # Table 1 replicated over 5 seeds (mean ± CI)
//	pmbench -exp all           # everything, in order
//	pmbench -quick             # ~10x shorter runs for smoke testing
//	pmbench -csv fig2.csv      # also write the figure series as CSV (f2/f4)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rlpm/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: t1,t2,t3,f2,f3,f4,a1,a2,a3,a4,a5,a6,oracle,life,symm,gpu,seeds,all")
		quick   = flag.Bool("quick", false, "shrink runs ~10x for smoke testing")
		csvPath = flag.String("csv", "", "write figure series (f2/f4) as CSV to this path")
		dur     = flag.Float64("duration", 0, "override evaluated seconds per scenario")
		eps     = flag.Int("episodes", 0, "override RL training episodes")
		seed    = flag.Uint64("seed", 0, "override scenario/exploration seed")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Quick = *quick
	if *dur > 0 {
		opt.DurationS = *dur
	}
	if *eps > 0 {
		opt.TrainEpisodes = *eps
	}
	if *seed > 0 {
		opt.Seed = *seed
	}

	if err := run(*exp, opt, *csvPath, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		os.Exit(1)
	}
}

func run(exp string, opt bench.Options, csvPath string, w io.Writer) error {
	ids := []string{exp}
	if exp == "all" {
		ids = []string{"t1", "t2", "t3", "f2", "f3", "f4", "a1", "a2", "a3", "a4", "a5", "a6", "oracle", "life", "symm", "gpu", "seeds"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := runOne(id, opt, csvPath, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(w, "[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(id string, opt bench.Options, csvPath string, w io.Writer) error {
	writeCSV := func(f interface{ WriteCSV(io.Writer) error }) error {
		if csvPath == "" {
			return nil
		}
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		return f.WriteCSV(out)
	}

	switch id {
	case "t1":
		t, err := bench.RunTable1(opt)
		if err != nil {
			return err
		}
		t.WriteText(w)
	case "t2":
		t, err := bench.RunTable2(opt)
		if err != nil {
			return err
		}
		t.WriteText(w)
	case "t3":
		t, err := bench.RunTable3(opt)
		if err != nil {
			return err
		}
		t.WriteText(w)
	case "f2":
		f, err := bench.RunFig2(opt)
		if err != nil {
			return err
		}
		f.WriteText(w)
		if err := writeCSV(f); err != nil {
			return err
		}
	case "f3":
		f, err := bench.RunFig3(opt)
		if err != nil {
			return err
		}
		f.WriteText(w)
	case "f4":
		f, err := bench.RunFig4(opt)
		if err != nil {
			return err
		}
		f.WriteText(w)
		if err := writeCSV(f); err != nil {
			return err
		}
	case "a1":
		a, err := bench.RunAblationStateBins(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "a2":
		a, err := bench.RunAblationPrecision(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "a3":
		a, err := bench.RunAblationLambda(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "a4":
		a, err := bench.RunAblationSwitchCost(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "oracle":
		o, err := bench.RunOracleStatic(opt)
		if err != nil {
			return err
		}
		o.WriteText(w)
	case "life":
		l, err := bench.RunBatteryLife(opt)
		if err != nil {
			return err
		}
		l.WriteText(w)
	case "a5":
		a, err := bench.RunAblationAlgorithm(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "symm":
		s, err := bench.RunSymmetric(opt)
		if err != nil {
			return err
		}
		s.WriteText(w)
	case "gpu":
		g, err := bench.RunGPUDomain(opt)
		if err != nil {
			return err
		}
		g.WriteText(w)
	case "a6":
		a, err := bench.RunAblationObsNoise(opt)
		if err != nil {
			return err
		}
		a.WriteText(w)
	case "seeds":
		s, err := bench.RunTable1Seeds(opt, 5)
		if err != nil {
			return err
		}
		s.WriteText(w)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
