// Command pmbench regenerates the paper's evaluation: every table and
// figure, selected by experiment id.
//
// Usage:
//
//	pmbench -exp t1            # Table 1: energy/QoS vs six governors
//	pmbench -exp t2            # Table 2: SW vs HW decision latency
//	pmbench -exp t3            # Table 3: FPGA resource estimates
//	pmbench -exp f2            # Fig. 2: learning convergence
//	pmbench -exp f3            # Fig. 3: energy & QoS bars
//	pmbench -exp f4            # Fig. 4: trace summary
//	pmbench -exp a1..a6        # ablations (state bins, precision, lambda, switch cost, algorithm, obs noise)
//	pmbench -exp oracle        # best-static-pin reference
//	pmbench -exp life          # battery-life projection per governor
//	pmbench -exp symm          # symmetric 8-core chip evaluation
//	pmbench -exp gpu           # three-domain (LITTLE+big+GPU) evaluation
//	pmbench -exp seeds         # Table 1 replicated over 5 seeds (mean ± CI)
//	pmbench -exp faults        # fault injection: HW path robustness grid
//	pmbench -exp all           # everything, in order
//	pmbench -quick             # ~10x shorter runs for smoke testing
//	pmbench -parallel 8        # engine worker count (0 = GOMAXPROCS, 1 = serial)
//	pmbench -csv fig2.csv      # also write the figure series as CSV (f2/f4)
//	pmbench -cpuprofile cpu.pprof   # write a CPU profile of the run
//	pmbench -memprofile mem.pprof   # write an allocation profile at exit
//	pmbench -trace trace.out        # write a runtime execution trace
//
// Output is byte-identical at every -parallel setting: evaluation cells
// fan out over internal/bench/engine but merge in canonical order, and
// each cell owns its deterministic RNG streams.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"rlpm/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(bench.ExperimentIDs(), ",")+",all")
		quick    = flag.Bool("quick", false, "shrink runs ~10x for smoke testing")
		csvPath  = flag.String("csv", "", "write figure series (f2/f4) as CSV to this path")
		dur      = flag.Float64("duration", 0, "override evaluated seconds per scenario")
		eps      = flag.Int("episodes", 0, "override RL training episodes")
		seed     = flag.Uint64("seed", 0, "override scenario/exploration seed")
		parallel = flag.Int("parallel", 0, "experiment-engine workers (0 = GOMAXPROCS, 1 = serial)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this path at exit")
		trcPath  = flag.String("trace", "", "write a runtime execution trace to this path")
	)
	flag.Parse()

	stopProfiling, err := startProfiling(*cpuProf, *memProf, *trcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		os.Exit(1)
	}
	defer stopProfiling()

	opt := bench.DefaultOptions()
	opt.Quick = *quick
	opt.Parallel = *parallel
	if *dur > 0 {
		opt.DurationS = *dur
	}
	if *eps > 0 {
		opt.TrainEpisodes = *eps
	}
	if *seed > 0 {
		opt.Seed = *seed
	}

	if err := run(*exp, opt, *csvPath, os.Stdout); err != nil {
		stopProfiling()
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		os.Exit(1)
	}
}

// startProfiling wires the requested profilers up and returns an
// idempotent stop function that flushes them.
func startProfiling(cpuPath, memPath, tracePath string) (func(), error) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "pmbench:", err)
			}
		})
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, s := range stops {
			s()
		}
	}, nil
}

func run(exp string, opt bench.Options, csvPath string, w io.Writer) error {
	ids := []string{exp}
	if exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := runOne(id, opt, csvPath, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(w, "[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(id string, opt bench.Options, csvPath string, w io.Writer) error {
	e, err := bench.ExperimentByID(id)
	if err != nil {
		return err
	}
	res, err := e.Run(opt)
	if err != nil {
		return err
	}
	res.WriteText(w)
	if csvPath == "" {
		return nil
	}
	f, ok := res.(bench.CSVWriter)
	if !ok {
		return nil
	}
	out, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer out.Close()
	return f.WriteCSV(out)
}
