// Command pmsim runs one scenario under one governor and prints the
// energy/QoS digest — the smallest way to poke the system.
//
// Usage:
//
//	pmsim -scenario gaming -governor ondemand
//	pmsim -scenario video -governor rl-policy -train 60
//	pmsim -scenario camera -governor rl-policy-hw
//	pmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "gaming", "workload scenario")
		govName  = flag.String("governor", "ondemand", "governor: six baselines, schedutil, rl-policy, rl-policy-hw")
		duration = flag.Float64("duration", 120, "simulated seconds")
		period   = flag.Float64("period", 0.05, "control period in seconds")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		train    = flag.Int("train", 60, "RL training episodes before evaluation")
		list     = flag.Bool("list", false, "list scenarios and governors")
	)
	flag.Parse()

	if *list {
		fmt.Println("scenarios:", strings.Join(workload.Names(), ", "))
		fmt.Println("governors:", strings.Join(append(governor.BaselineNames(), "schedutil", "rl-policy", "rl-policy-hw"), ", "))
		return
	}

	if err := run(*scenario, *govName, *duration, *period, *seed, *train); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
}

func run(scenario, govName string, duration, period float64, seed uint64, train int) error {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return err
	}
	spec, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return err
	}
	cfg := sim.Config{PeriodS: period, DurationS: duration, Seed: seed}

	gov, err := buildGovernor(govName, chip, scen, cfg, train)
	if err != nil {
		return err
	}

	res, err := sim.Run(chip, scen, gov, cfg)
	if err != nil {
		return err
	}
	s := res.QoS
	fmt.Printf("scenario=%s governor=%s duration=%.0fs periods=%d\n", res.Scenario, res.Governor, duration, s.Periods)
	fmt.Printf("  energy          %10.1f J\n", s.TotalEnergyJ)
	fmt.Printf("  energy per QoS  %10.4f J/served-period\n", s.EnergyPerQoS)
	fmt.Printf("  mean QoS        %10.4f (raw service %0.4f, min %0.4f)\n", s.MeanQoS, s.MeanService, s.MinQoS)
	fmt.Printf("  violations      %10d of %d critical periods (%.2f%%)\n",
		s.Violations, s.CriticalPeriods, 100*s.ViolationRate)
	if hg, ok := gov.(*hwpolicy.Governor); ok {
		n, mean, max := hg.LatencyStats()
		fmt.Printf("  hw decisions    %10d, mean MMIO latency %v (max %v)\n", n, mean, max)
	}
	return nil
}

func buildGovernor(name string, chip *soc.Chip, scen workload.Scenario, cfg sim.Config, train int) (sim.Governor, error) {
	switch name {
	case "rl-policy":
		p, err := core.NewPolicy(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if train > 0 {
			if _, err := core.Train(chip, scen, p, cfg, train); err != nil {
				return nil, err
			}
			p.SetLearning(false)
		}
		return p, nil
	case "rl-policy-hw":
		p, err := core.NewPolicy(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if train > 0 {
			if _, err := core.Train(chip, scen, p, cfg, train); err != nil {
				return nil, err
			}
			p.SetLearning(false)
			return hwpolicy.FromPolicy(p, core.DefaultConfig(), bus.DefaultConfig(), hwpolicy.DefaultParams().Banks)
		}
		return hwpolicy.NewGovernor(core.DefaultConfig(), bus.DefaultConfig(), hwpolicy.DefaultParams().Banks)
	default:
		return governor.New(name)
	}
}
