// Command pmserve hosts a trained power-management policy as an HTTP/JSON
// decision server: many per-device sessions, batched lookups against one
// shared frozen Q-table set, and versioned/checksummed checkpointing.
//
// Startup resolves the model in this order:
//
//  1. -checkpoint <path> pointing at an existing file loads it (the file's
//     recorded state configuration is authoritative);
//  2. otherwise a fresh policy is trained on -scenario for -episodes
//     episodes and, when -checkpoint is set, saved there.
//
// Usage:
//
//	pmserve                                  # train quickly, serve on :7421
//	pmserve -checkpoint policy.ckpt          # load (or train+save) a checkpoint
//	pmserve -backend hw                      # serve through the modeled accelerator
//	pmserve -backend hw -fault-read-err 1e-3 # ...with injected bus faults
//	pmserve -listen-bin 127.0.0.1:7422       # also speak the binary wire protocol
//	pmserve -learn -checkpoint policy.ckpt   # apply device rewards as live Q-updates
//
// Endpoints: POST /v1/sessions, POST /v1/sessions/{id}/decide,
// POST /v1/sessions/{id}/reward, DELETE /v1/sessions/{id},
// POST /v1/checkpoint, GET /metrics, GET /healthz.
//
// SIGINT/SIGTERM run the graceful drain — stop accepting, finish in-flight
// requests, publish a final checkpoint when -checkpoint is set — then exit
// 0: the clean-shutdown contract the CI smoke job asserts. Start the next
// incarnation with a bumped -epoch so clients holding sessions from the
// old process detect the restart and transparently resume. -session-ttl
// reaps abandoned sessions; -queue-deadline sheds decide requests that
// queued too long, answering with a Retry-After hint the clients honor.
// SIGUSR1 dumps the full Prometheus metrics exposition to stderr without
// disturbing serving — the kick-the-tires observability hook when no
// scraper is attached.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlpm/internal/bench"
	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7421", "listen address")
		binAddr    = flag.String("listen-bin", "", "binary-protocol listen address (e.g. 127.0.0.1:7422); empty disables")
		checkpoint = flag.String("checkpoint", "", "checkpoint path: loaded when present, written by POST /v1/checkpoint (and after training)")
		scenario   = flag.String("scenario", "gaming", "training scenario when no checkpoint is loaded")
		episodes   = flag.Int("episodes", 0, "training episodes (0 = quick default)")
		quick      = flag.Bool("quick", true, "train with the ~10x-shrunk quick settings")
		backendFl  = flag.String("backend", "sw", "serving backend: sw (table walk) or hw (modeled accelerator)")
		maxBatch   = flag.Int("batch", 256, "max lookups coalesced per backend call")
		linger     = flag.Duration("linger", 0, "batch linger window (0 = opportunistic coalescing only)")
		seed       = flag.Uint64("seed", 1, "training seed")

		epoch         = flag.Uint("epoch", 1, "server incarnation number; bump on every restart so clients detect stale sessions and resume")
		sessionTTL    = flag.Duration("session-ttl", 0, "reap sessions idle longer than this (0 = never)")
		queueDeadline = flag.Duration("queue-deadline", 0, "shed decide requests queued longer than this with a retry hint (0 = never)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown window on SIGINT/SIGTERM")

		learn          = flag.Bool("learn", false, "apply device-reported rewards as live Q-updates (sw backend only)")
		learnSeed      = flag.Uint64("learn-seed", 1, "learner Double-Q coin seed")
		learnAlpha     = flag.Float64("learn-alpha", 0, "learning rate override (0 = model config)")
		learnGamma     = flag.Float64("learn-gamma", 0, "discount override (0 = model config)")
		learnSwapEvery = flag.Int("learn-swap-every", 0, "applied updates per table publication (0 = default 256)")
		learnCkptEvery = flag.Duration("learn-checkpoint-every", 0, "periodically publish the learned tables to -checkpoint (0 = only on drain)")

		faultReadErr  = flag.Float64("fault-read-err", 0, "hw backend: injected bus read error rate")
		faultWriteErr = flag.Float64("fault-write-err", 0, "hw backend: injected bus write error rate")
		faultTimeout  = flag.Float64("fault-timeout", 0, "hw backend: injected device-wedge rate")
		faultSeed     = flag.Uint64("fault-seed", 7, "hw backend: fault injection seed")
	)
	flag.Parse()

	srv, err := buildServer(serverParams{
		checkpoint: *checkpoint, scenario: *scenario, episodes: *episodes,
		quick: *quick, backend: *backendFl, maxBatch: *maxBatch, linger: *linger,
		seed: *seed, faultReadErr: *faultReadErr, faultWriteErr: *faultWriteErr,
		faultTimeout: *faultTimeout, faultSeed: *faultSeed,
		epoch: uint32(*epoch), sessionTTL: *sessionTTL, queueDeadline: *queueDeadline,
		learn: serve.LearnConfig{
			Enabled: *learn, Seed: *learnSeed, Alpha: *learnAlpha, Gamma: *learnGamma,
			SwapEvery: *learnSwapEvery, CheckpointEvery: *learnCkptEvery,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmserve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "pmserve: serving %d clusters on http://%s (backend %s)\n",
		srv.Model().Clusters(), ln.Addr(), *backendFl)

	// The binary listener rides alongside HTTP against the same sessions;
	// srv.Close (run on shutdown below) tears it and its connections down.
	binDone := make(chan error, 1)
	if *binAddr != "" {
		binLn, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmserve: binary protocol on %s\n", binLn.Addr())
		go func() { binDone <- srv.ServeBin(binLn) }()
	} else {
		binDone <- nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGUSR1: dump the Prometheus exposition to stderr, as many times as
	// asked — serving is never paused.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			fmt.Fprintln(os.Stderr, "pmserve: SIGUSR1 metrics dump:")
			if err := srv.Registry().WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "pmserve: metrics dump:", err)
			}
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pmserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pmserve: shutdown:", err)
			os.Exit(1)
		}
		<-errCh
		// Graceful half of shutdown: stop the binary listeners, let
		// in-flight frames finish, and publish a final checkpoint so the
		// next incarnation (started with a bumped -epoch) resumes from the
		// exact frozen policy.
		if err := srv.Drain(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pmserve: drain:", err)
			os.Exit(1)
		}
	}
	srv.Close() // idempotent; closes the binary listener so ServeBin returns
	if err := <-binDone; err != nil {
		fmt.Fprintln(os.Stderr, "pmserve: binary listener:", err)
		os.Exit(1)
	}
	m := srv.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "pmserve: served %d decisions (%d lookups, %d batches, mean occupancy %.1f) to %d sessions; exiting\n",
		m.Decisions, m.LookupsServed, m.Batches, m.MeanBatchOccupancy, m.SessionsCreated)
}

type serverParams struct {
	checkpoint, scenario, backend             string
	episodes, maxBatch                        int
	quick                                     bool
	linger                                    time.Duration
	seed, faultSeed                           uint64
	faultReadErr, faultWriteErr, faultTimeout float64
	epoch                                     uint32
	sessionTTL, queueDeadline                 time.Duration
	learn                                     serve.LearnConfig
}

// buildServer resolves the model (checkpoint or fresh training), wires the
// chosen backend, and assembles the server with the resilience config.
func buildServer(p serverParams) (*serve.Server, error) {
	var (
		model   *serve.Model
		backend serve.Backend
	)
	loadedCheckpoint := false
	freshlyTrained := false
	if p.checkpoint != "" {
		if _, err := os.Stat(p.checkpoint); err == nil {
			m, err := serve.LoadModel(p.checkpoint, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			model = m
			fmt.Fprintf(os.Stderr, "pmserve: loaded checkpoint %s\n", p.checkpoint)
			loadedCheckpoint = true
		}
	}
	if model != nil {
		switch p.backend {
		case "", "sw":
			backend = serve.NewSWBackend(model)
		case "hw":
			hwCfg := serve.DefaultHWBackendConfig()
			if fc := faultConfig(p); fc != nil {
				inj, err := fault.NewInjector(*fc)
				if err != nil {
					return nil, err
				}
				hwCfg.Injector = inj
			}
			var err error
			backend, err = serve.NewHWBackend(model, hwCfg)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown backend %q", p.backend)
		}
	} else {
		opt := bench.DefaultOptions()
		opt.Quick = p.quick
		opt.Seed = p.seed
		if p.episodes > 0 {
			opt.TrainEpisodes = p.episodes
			opt.Quick = false
		}
		fmt.Fprintf(os.Stderr, "pmserve: training on %q (%d episodes, quick=%v)...\n", p.scenario, opt.TrainEpisodes, opt.Quick)
		var err error
		model, backend, err = bench.TrainedServeModel(bench.ServeOptions{
			Options: opt, Scenario: p.scenario, Backend: p.backend,
			Fault: faultConfig(p),
		})
		if err != nil {
			return nil, err
		}
		freshlyTrained = true
	}

	if p.learn.Enabled && p.backend == "hw" {
		return nil, fmt.Errorf("-learn requires the sw backend: learned tables publish by swapping immutable models, which the modeled accelerator cannot do")
	}
	srv, err := serve.New(model, backend, serve.Config{
		MaxBatch: p.maxBatch, Linger: p.linger, CheckpointPath: p.checkpoint,
		Epoch: p.epoch, SessionTTL: p.sessionTTL, QueueDeadline: p.queueDeadline,
		Learn: p.learn,
	})
	if err != nil {
		return nil, err
	}
	switch {
	case freshlyTrained && p.checkpoint != "":
		n, err := serve.SaveCheckpoint(p.checkpoint, srv.Model().Snapshot())
		if err != nil {
			srv.Close()
			return nil, err
		}
		srv.MarkCheckpoint(time.Now())
		srv.Events().Addf("checkpoint", "saved fresh checkpoint %s (%d bytes)", p.checkpoint, n)
		fmt.Fprintf(os.Stderr, "pmserve: saved fresh checkpoint %s (%d bytes)\n", p.checkpoint, n)
	case loadedCheckpoint:
		srv.MarkCheckpoint(time.Now())
		srv.Events().Addf("checkpoint", "loaded %s", p.checkpoint)
	}
	return srv, nil
}

// faultConfig assembles the injector config from the fault flags; nil when
// every rate is zero.
func faultConfig(p serverParams) *fault.Config {
	if p.faultReadErr == 0 && p.faultWriteErr == 0 && p.faultTimeout == 0 {
		return nil
	}
	return &fault.Config{
		Seed:           p.faultSeed,
		ReadErrorRate:  p.faultReadErr,
		WriteErrorRate: p.faultWriteErr,
		TimeoutRate:    p.faultTimeout,
	}
}
