// Command pmserve hosts a trained power-management policy as an HTTP/JSON
// decision server: many per-device sessions, batched lookups against one
// shared frozen Q-table set, and versioned/checksummed checkpointing.
//
// Startup resolves the model in this order:
//
//  1. -checkpoint <path> pointing at an existing file loads it (the file's
//     recorded state configuration is authoritative);
//  2. otherwise a fresh policy is trained on -scenario for -episodes
//     episodes and, when -checkpoint is set, saved there.
//
// Usage:
//
//	pmserve                                  # train quickly, serve on :7421
//	pmserve -checkpoint policy.ckpt          # load (or train+save) a checkpoint
//	pmserve -backend hw                      # serve through the modeled accelerator
//	pmserve -backend hw -fault-read-err 1e-3 # ...with injected bus faults
//	pmserve -listen-bin 127.0.0.1:7422       # also speak the binary wire protocol
//
// Endpoints: POST /v1/sessions, POST /v1/sessions/{id}/decide,
// POST /v1/sessions/{id}/reward, DELETE /v1/sessions/{id},
// POST /v1/checkpoint, GET /metrics, GET /healthz.
//
// SIGINT/SIGTERM drain the listener and exit 0 — the clean-shutdown
// contract the CI smoke job asserts. SIGUSR1 dumps the full Prometheus
// metrics exposition to stderr without disturbing serving — the
// kick-the-tires observability hook when no scraper is attached.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlpm/internal/bench"
	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7421", "listen address")
		binAddr    = flag.String("listen-bin", "", "binary-protocol listen address (e.g. 127.0.0.1:7422); empty disables")
		checkpoint = flag.String("checkpoint", "", "checkpoint path: loaded when present, written by POST /v1/checkpoint (and after training)")
		scenario   = flag.String("scenario", "gaming", "training scenario when no checkpoint is loaded")
		episodes   = flag.Int("episodes", 0, "training episodes (0 = quick default)")
		quick      = flag.Bool("quick", true, "train with the ~10x-shrunk quick settings")
		backendFl  = flag.String("backend", "sw", "serving backend: sw (table walk) or hw (modeled accelerator)")
		maxBatch   = flag.Int("batch", 256, "max lookups coalesced per backend call")
		linger     = flag.Duration("linger", 0, "batch linger window (0 = opportunistic coalescing only)")
		seed       = flag.Uint64("seed", 1, "training seed")

		faultReadErr  = flag.Float64("fault-read-err", 0, "hw backend: injected bus read error rate")
		faultWriteErr = flag.Float64("fault-write-err", 0, "hw backend: injected bus write error rate")
		faultTimeout  = flag.Float64("fault-timeout", 0, "hw backend: injected device-wedge rate")
		faultSeed     = flag.Uint64("fault-seed", 7, "hw backend: fault injection seed")
	)
	flag.Parse()

	srv, err := buildServer(serverParams{
		checkpoint: *checkpoint, scenario: *scenario, episodes: *episodes,
		quick: *quick, backend: *backendFl, maxBatch: *maxBatch, linger: *linger,
		seed: *seed, faultReadErr: *faultReadErr, faultWriteErr: *faultWriteErr,
		faultTimeout: *faultTimeout, faultSeed: *faultSeed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmserve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "pmserve: serving %d clusters on http://%s (backend %s)\n",
		srv.Model().Clusters(), ln.Addr(), *backendFl)

	// The binary listener rides alongside HTTP against the same sessions;
	// srv.Close (run on shutdown below) tears it and its connections down.
	binDone := make(chan error, 1)
	if *binAddr != "" {
		binLn, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmserve: binary protocol on %s\n", binLn.Addr())
		go func() { binDone <- srv.ServeBin(binLn) }()
	} else {
		binDone <- nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGUSR1: dump the Prometheus exposition to stderr, as many times as
	// asked — serving is never paused.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			fmt.Fprintln(os.Stderr, "pmserve: SIGUSR1 metrics dump:")
			if err := srv.Registry().WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "pmserve: metrics dump:", err)
			}
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pmserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pmserve: shutdown:", err)
			os.Exit(1)
		}
		<-errCh
	}
	srv.Close() // idempotent; closes the binary listener so ServeBin returns
	if err := <-binDone; err != nil {
		fmt.Fprintln(os.Stderr, "pmserve: binary listener:", err)
		os.Exit(1)
	}
	m := srv.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "pmserve: served %d decisions (%d lookups, %d batches, mean occupancy %.1f) to %d sessions; exiting\n",
		m.Decisions, m.LookupsServed, m.Batches, m.MeanBatchOccupancy, m.SessionsCreated)
}

type serverParams struct {
	checkpoint, scenario, backend             string
	episodes, maxBatch                        int
	quick                                     bool
	linger                                    time.Duration
	seed, faultSeed                           uint64
	faultReadErr, faultWriteErr, faultTimeout float64
}

// buildServer resolves the model (checkpoint or fresh training) and wires
// the chosen backend.
func buildServer(p serverParams) (*serve.Server, error) {
	var model *serve.Model
	loadedCheckpoint := false
	if p.checkpoint != "" {
		if _, err := os.Stat(p.checkpoint); err == nil {
			m, err := serve.LoadModel(p.checkpoint, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			model = m
			fmt.Fprintf(os.Stderr, "pmserve: loaded checkpoint %s\n", p.checkpoint)
			loadedCheckpoint = true
		}
	}
	if model == nil {
		opt := bench.DefaultOptions()
		opt.Quick = p.quick
		opt.Seed = p.seed
		if p.episodes > 0 {
			opt.TrainEpisodes = p.episodes
			opt.Quick = false
		}
		fmt.Fprintf(os.Stderr, "pmserve: training on %q (%d episodes, quick=%v)...\n", p.scenario, opt.TrainEpisodes, opt.Quick)
		srv, err := bench.NewServeServer(bench.ServeOptions{
			Options: opt, Scenario: p.scenario, Backend: p.backend,
			MaxBatch: p.maxBatch, Linger: p.linger, CheckpointPath: p.checkpoint,
			Fault: faultConfig(p),
		})
		if err != nil {
			return nil, err
		}
		if p.checkpoint != "" {
			if n, err := serve.SaveCheckpoint(p.checkpoint, srv.Model().Snapshot()); err != nil {
				srv.Close()
				return nil, err
			} else {
				srv.MarkCheckpoint(time.Now())
				srv.Events().Addf("checkpoint", "saved fresh checkpoint %s (%d bytes)", p.checkpoint, n)
				fmt.Fprintf(os.Stderr, "pmserve: saved fresh checkpoint %s (%d bytes)\n", p.checkpoint, n)
			}
		}
		return srv, nil
	}

	var backend serve.Backend
	switch p.backend {
	case "", "sw":
		backend = serve.NewSWBackend(model)
	case "hw":
		hwCfg := serve.DefaultHWBackendConfig()
		if fc := faultConfig(p); fc != nil {
			inj, err := fault.NewInjector(*fc)
			if err != nil {
				return nil, err
			}
			hwCfg.Injector = inj
		}
		var err error
		backend, err = serve.NewHWBackend(model, hwCfg)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown backend %q", p.backend)
	}
	srv, err := serve.New(model, backend, serve.Config{
		MaxBatch: p.maxBatch, Linger: p.linger, CheckpointPath: p.checkpoint,
	})
	if err != nil {
		return nil, err
	}
	srv.MarkCheckpoint(time.Now())
	if loadedCheckpoint {
		srv.Events().Addf("checkpoint", "loaded %s", p.checkpoint)
	}
	return srv, nil
}

// faultConfig assembles the injector config from the fault flags; nil when
// every rate is zero.
func faultConfig(p serverParams) *fault.Config {
	if p.faultReadErr == 0 && p.faultWriteErr == 0 && p.faultTimeout == 0 {
		return nil
	}
	return &fault.Config{
		Seed:           p.faultSeed,
		ReadErrorRate:  p.faultReadErr,
		WriteErrorRate: p.faultWriteErr,
		TimeoutRate:    p.faultTimeout,
	}
}
