// Command pmrouter fronts N pmserve shards with consistent-hash routing.
//
// Devices talk to the router exactly as they would to a single pmserve —
// same HTTP routes, same binary frames, same error codes and backoff
// hints — and the router forwards each call to the shard that owns the
// device's seed on a seed-deterministic consistent-hash ring. Shards are
// named on the command line:
//
//	pmrouter -addr 127.0.0.1:7430 -listen-bin 127.0.0.1:7431 \
//	  -shard s0=127.0.0.1:7422@127.0.0.1:7421 \
//	  -shard s1=127.0.0.1:7432@127.0.0.1:7431
//
// Each -shard is name=BINADDR[@HTTPADDR]: BINADDR is the shard's binary
// listener (the forwarding path), HTTPADDR its HTTP listener (used to
// scrape and merge per-shard metrics into the router's fleet-wide
// GET /metrics). Membership changes at runtime go through the admin
// routes POST /v1/shards and DELETE /v1/shards/{name}; sessions whose
// keyspace moves are invalidated and their devices transparently resume
// on the new owner.
//
// Every process that must agree on placement (other routers, shard-direct
// load generators) shares -ring-seed and -vnodes; GET /v1/ring publishes
// the ring so peers can verify.
//
// SIGINT/SIGTERM stop the fronts, wait for in-flight forwards, and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rlpm/internal/serve"
	"rlpm/internal/shard"
)

// shardFlags collects repeatable -shard name=BINADDR[@HTTPADDR] values.
type shardFlags []shard.ShardSpec

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sp := range *s {
		parts[i] = fmt.Sprintf("%s=%s@%s", sp.Name, sp.BinAddr, sp.HTTPAddr)
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, addrs, ok := strings.Cut(v, "=")
	if !ok || name == "" || addrs == "" {
		return fmt.Errorf("want name=BINADDR[@HTTPADDR], got %q", v)
	}
	binAddr, httpAddr, _ := strings.Cut(addrs, "@")
	if binAddr == "" {
		return fmt.Errorf("shard %q needs a binary address", name)
	}
	*s = append(*s, shard.ShardSpec{Name: name, BinAddr: binAddr, HTTPAddr: httpAddr})
	return nil
}

func main() {
	var shards shardFlags
	var (
		addr        = flag.String("addr", "127.0.0.1:7430", "HTTP listen address (device API, admin, merged /metrics)")
		binAddr     = flag.String("listen-bin", "", "binary-protocol listen address; empty disables")
		epoch       = flag.Uint("epoch", 1, "router incarnation number; bump on every restart")
		ringSeed    = flag.Uint64("ring-seed", 1, "consistent-hash ring seed; share with every placement peer")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per shard (0 = default)")
		callTimeout = flag.Duration("call-timeout", 5*time.Second, "per-forward deadline to a shard")
		waitShards  = flag.Duration("wait-shards", 0, "wait up to this long for every shard's /healthz before serving (0 = don't)")
	)
	flag.Var(&shards, "shard", "shard as name=BINADDR[@HTTPADDR]; repeatable")
	flag.Parse()

	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "pmrouter: at least one -shard required")
		os.Exit(1)
	}
	if *waitShards > 0 {
		if err := waitHealthy(shards, *waitShards); err != nil {
			fmt.Fprintln(os.Stderr, "pmrouter:", err)
			os.Exit(1)
		}
	}

	router, err := shard.NewRouter(shard.RouterConfig{
		Epoch:       uint32(*epoch),
		RingSeed:    *ringSeed,
		VNodes:      *vnodes,
		CallTimeout: *callTimeout,
	}, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		os.Exit(1)
	}
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: router.Handler()}
	fmt.Fprintf(os.Stderr, "pmrouter: routing %d shards on http://%s (ring seed %d, epoch %d)\n",
		len(shards), ln.Addr(), *ringSeed, *epoch)

	binDone := make(chan error, 1)
	if *binAddr != "" {
		binLn, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmrouter:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmrouter: binary protocol on %s\n", binLn.Addr())
		go func() { binDone <- router.ServeBin(binLn) }()
	} else {
		binDone <- nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pmrouter:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pmrouter: shutdown:", err)
		}
		<-errCh
	}
	router.Close() // closes the binary fronts so ServeBin returns
	if err := <-binDone; err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter: binary listener:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pmrouter: exiting")
}

// waitHealthy polls each shard's /healthz (when it has an HTTP address)
// until it answers or the window runs out.
func waitHealthy(shards []shard.ShardSpec, window time.Duration) error {
	deadline := time.Now().Add(window)
	for _, sp := range shards {
		if sp.HTTPAddr == "" {
			continue
		}
		c := serve.NewClient("http://" + sp.HTTPAddr)
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("shard %s: health wait window exhausted", sp.Name)
		}
		ctx, cancel := context.WithTimeout(context.Background(), remain)
		err := c.WaitHealthy(ctx, remain)
		cancel()
		c.CloseIdleConnections()
		if err != nil {
			return fmt.Errorf("shard %s not healthy: %w", sp.Name, err)
		}
	}
	return nil
}
