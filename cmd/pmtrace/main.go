// Command pmtrace runs a scenario under a governor and writes the
// per-period time series (OPP levels, utilizations, power, QoS) as CSV —
// the raw material for Fig. 4-style plots.
//
// Usage:
//
//	pmtrace -scenario gaming -governor rl-policy -o gaming_rl.csv
//	pmtrace -scenario gaming -governor ondemand            # CSV to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/trace"
	"rlpm/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "gaming", "workload scenario")
		govName  = flag.String("governor", "ondemand", "governor name (see pmsim -list)")
		duration = flag.Float64("duration", 30, "simulated seconds")
		period   = flag.Float64("period", 0.05, "control period in seconds")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		train    = flag.Int("train", 60, "RL training episodes before the traced run")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		every    = flag.Int("every", 1, "keep every k-th sample")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	if err := run(*scenario, *govName, *duration, *period, *seed, *train, *every, w); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
}

func run(scenario, govName string, duration, period float64, seed uint64, train, every int, w io.Writer) error {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return err
	}
	spec, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return err
	}

	var gov sim.Governor
	if govName == "rl-policy" {
		p, err := core.NewPolicy(core.DefaultConfig())
		if err != nil {
			return err
		}
		if train > 0 {
			trainCfg := sim.Config{PeriodS: period, DurationS: 120, Seed: seed}
			if _, err := core.Train(chip, scen, p, trainCfg, train); err != nil {
				return err
			}
			p.SetLearning(false)
		}
		gov = p
	} else {
		gov, err = governor.New(govName)
		if err != nil {
			return err
		}
	}

	rec, err := trace.NewRecorder(sim.RecorderColumns(chip.NumClusters())...)
	if err != nil {
		return err
	}
	cfg := sim.Config{PeriodS: period, DurationS: duration, Seed: seed, Recorder: rec}
	if _, err := sim.Run(chip, scen, gov, cfg); err != nil {
		return err
	}
	if every > 1 {
		rec, err = rec.Downsample(every)
		if err != nil {
			return err
		}
	}
	return rec.WriteCSV(w)
}
