// Command pmperf runs the hot-path benchmark suite (internal/bench/perf.go)
// through testing.Benchmark and writes the results as JSON, so CI and
// PR descriptions can cite machine-readable numbers.
//
// Usage:
//
//	pmperf                      # run everything, write BENCH_pr3.json
//	pmperf -out results.json    # choose the output path
//	pmperf -engine=false        # skip the slow end-to-end engine benchmark
//	pmperf -benchtime 2s        # per-benchmark measuring time
//	pmperf -baseline old.json   # print an old-vs-new comparison (non-gating)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"rlpm/internal/bench"
)

// result is one benchmark's measurement in the emitted JSON.
type result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_pr3.json", "output JSON path")
		engine    = flag.Bool("engine", true, "include the end-to-end quick-evaluation benchmark")
		benchtime = flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
		baseline  = flag.String("baseline", "", "prior pmperf JSON to compare against (printed, never gating)")
	)
	flag.Parse()
	setBenchtime(*benchtime)

	cases := []struct {
		name string
		body func(*testing.B)
	}{
		{"ClusterStep", bench.BenchClusterStep},
		{"ChipStepInto", bench.BenchChipStepInto},
		{"AgentStep", bench.BenchAgentStep},
	}
	for _, batch := range []int{32, 256} {
		cases = append(cases, struct {
			name string
			body func(*testing.B)
		}{fmt.Sprintf("PointerLookup/batch%d", batch), bench.BenchPointerLookup(batch)},
			struct {
				name string
				body func(*testing.B)
			}{fmt.Sprintf("FlatLookup/batch%d", batch), bench.BenchFlatLookup(batch)})
	}
	for _, g := range bench.PerfGovernors() {
		cases = append(cases, struct {
			name string
			body func(*testing.B)
		}{"SimRun/" + g, bench.BenchSimRun(g)})
	}
	if *engine {
		cases = append(cases, struct {
			name string
			body func(*testing.B)
		}{"EngineQuickAll", bench.BenchEngineQuickAll})
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "pmperf: %s...\n", c.name)
		r := testing.Benchmark(c.body)
		res := result{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = map[string]float64{}
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "pmperf: %s: %.1f ns/op, %d allocs/op\n", c.name, res.NsPerOp, res.AllocsPerOp)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmperf:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "pmperf:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pmperf:", err)
		os.Exit(1)
	}
	fmt.Printf("pmperf: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	if *baseline != "" {
		compareBaseline(*baseline, rep)
	}
}

// compareBaseline prints a benchstat-style old-vs-new table for benchmarks
// present in both the baseline report and this run. It is informational
// only — single-run measurements on shared CI machines are too noisy to
// gate on, so it never affects the exit status.
func compareBaseline(path string, now report) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmperf: baseline unavailable: %v\n", err)
		return
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "pmperf: baseline unreadable: %v\n", err)
		return
	}
	old := map[string]result{}
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Printf("\ncomparison vs %s (informational, single run each):\n", path)
	fmt.Printf("%-28s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, b := range now.Benchmarks {
		o, ok := old[b.Name]
		if !ok || o.NsPerOp == 0 {
			fmt.Printf("%-28s %14s %14.1f %9s\n", b.Name, "-", b.NsPerOp, "new")
			continue
		}
		fmt.Printf("%-28s %14.1f %14.1f %+8.1f%%\n", b.Name, o.NsPerOp, b.NsPerOp, (b.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
	}
}

// setBenchtime routes our -benchtime value into the testing package's flag
// (testing.Benchmark reads it; the default is 1s).
func setBenchtime(d time.Duration) {
	// testing registers its flags lazily; Init makes them visible.
	testing.Init()
	if f := flag.Lookup("test.benchtime"); f != nil {
		_ = f.Value.Set(d.String())
	}
}
