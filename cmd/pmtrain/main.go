// Command pmtrain trains the RL power-management policy on a scenario and
// saves the learned Q-tables to disk; it can also evaluate a saved policy,
// on the training scenario or any other.
//
// Training progress is tracked through an obs registry — per-episode
// reward (negated energy/QoS), mean exploration rate, and mean TD-error
// magnitude — and -metrics writes the final Prometheus exposition to a
// file, so a training run leaves the same kind of artifact a serving run
// exposes on /metrics.
//
// Usage:
//
//	pmtrain -scenario gaming -episodes 60 -o gaming.policy
//	pmtrain -load gaming.policy -scenario gaming        # evaluate
//	pmtrain -load gaming.policy -scenario video         # transfer test
//	pmtrain -episodes 60 -metrics train.prom            # keep the metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"rlpm/internal/core"
	"rlpm/internal/obs"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "gaming", "workload scenario")
		episodes = flag.Int("episodes", 60, "training episodes")
		duration = flag.Float64("duration", 120, "seconds per episode / evaluation")
		period   = flag.Float64("period", 0.05, "control period in seconds")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		out      = flag.String("o", "", "save the trained policy to this path")
		load     = flag.String("load", "", "load a saved policy instead of training")
		metrics  = flag.String("metrics", "", "write the final Prometheus metrics exposition to this path")
	)
	flag.Parse()

	if err := run(*scenario, *episodes, *duration, *period, *seed, *out, *load, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrain:", err)
		os.Exit(1)
	}
}

// trainGauges is the training-progress slice of the registry: last-value
// gauges updated at every episode boundary.
type trainGauges struct {
	reg          *obs.Registry
	episode      *obs.Gauge // 1-based index of the last finished episode
	reward       *obs.Gauge // per-episode reward: -energy/QoS
	energyPerQoS *obs.Gauge
	meanQoS      *obs.Gauge
	epsilon      *obs.Gauge // mean exploration rate across agents
	qDelta       *obs.Gauge // mean |TD error| across agents
}

func newTrainGauges() *trainGauges {
	reg := obs.NewRegistry()
	return &trainGauges{
		reg:          reg,
		episode:      reg.NewGauge("pmtrain_episode", "last finished training episode (1-based)"),
		reward:       reg.NewGauge("pmtrain_episode_reward", "episode reward (negated energy-per-QoS)"),
		energyPerQoS: reg.NewGauge("pmtrain_episode_energy_per_qos", "episode energy per delivered QoS (J)"),
		meanQoS:      reg.NewGauge("pmtrain_episode_mean_qos", "episode mean QoS"),
		epsilon:      reg.NewGauge("pmtrain_epsilon", "mean exploration rate across agents"),
		qDelta:       reg.NewGauge("pmtrain_q_delta", "mean absolute TD error across agents"),
	}
}

func (g *trainGauges) observe(ep int, r sim.Result, p *core.Policy) {
	g.episode.Set(float64(ep))
	g.reward.Set(-r.QoS.EnergyPerQoS)
	g.energyPerQoS.Set(r.QoS.EnergyPerQoS)
	g.meanQoS.Set(r.QoS.MeanQoS)
	g.epsilon.Set(p.MeanEpsilon())
	g.qDelta.Set(p.MeanTD())
}

func run(scenario string, episodes int, duration, period float64, seed uint64, out, load, metrics string) error {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return err
	}
	spec, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return err
	}
	cfg := sim.Config{PeriodS: period, DurationS: duration, Seed: seed}

	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		return err
	}
	gauges := newTrainGauges()

	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		snap, err := core.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		// One decision materializes the agents so the snapshot can land.
		if _, err := sim.Run(chip, scen, policy, sim.Config{PeriodS: period, DurationS: period, Seed: seed}); err != nil {
			return err
		}
		if err := policy.Restore(snap); err != nil {
			return err
		}
		policy.SetLearning(false)
		fmt.Printf("loaded policy from %s\n", load)
	} else {
		if episodes <= 0 {
			return fmt.Errorf("non-positive episode count %d", episodes)
		}
		fmt.Printf("training on %s for %d episodes of %.0fs...\n", scenario, episodes, duration)
		// Episode loop with the same per-episode seed derivation as
		// sim.RunEpisodes (core.Train's engine), so the trajectory is
		// byte-identical to a single Train call — the gauges ride along
		// without touching training.
		policy.SetLearning(true)
		var first, last float64
		for ep := 0; ep < episodes; ep++ {
			c := cfg
			c.Seed = cfg.Seed + uint64(ep)*0x9e3779b9
			r, err := sim.Run(chip, scen, policy, c)
			if err != nil {
				return err
			}
			if ep == 0 {
				first = r.QoS.EnergyPerQoS
			}
			last = r.QoS.EnergyPerQoS
			gauges.observe(ep+1, r, policy)
		}
		fmt.Printf("energy/QoS: episode 1 = %.4f, episode %d = %.4f\n", first, episodes, last)
		policy.SetLearning(false)
	}

	res, err := sim.Run(chip, scen, policy, cfg)
	if err != nil {
		return err
	}
	s := res.QoS
	fmt.Printf("evaluation on %s: energy/QoS=%.4f meanQoS=%.4f violations=%.2f%% energy=%.1fJ\n",
		scenario, s.EnergyPerQoS, s.MeanQoS, 100*s.ViolationRate, s.TotalEnergyJ)

	if metrics != "" {
		f, err := os.Create(metrics)
		if err != nil {
			return err
		}
		werr := gauges.reg.WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote metrics to %s\n", metrics)
	}

	if out != "" {
		snap, err := policy.Snapshot()
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := snap.Encode(f); err != nil {
			return err
		}
		fmt.Printf("saved policy to %s\n", out)
	}
	return nil
}
