// Command pmtrain trains the RL power-management policy on a scenario and
// saves the learned Q-tables to disk; it can also evaluate a saved policy,
// on the training scenario or any other.
//
// Usage:
//
//	pmtrain -scenario gaming -episodes 60 -o gaming.policy
//	pmtrain -load gaming.policy -scenario gaming        # evaluate
//	pmtrain -load gaming.policy -scenario video         # transfer test
package main

import (
	"flag"
	"fmt"
	"os"

	"rlpm/internal/core"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "gaming", "workload scenario")
		episodes = flag.Int("episodes", 60, "training episodes")
		duration = flag.Float64("duration", 120, "seconds per episode / evaluation")
		period   = flag.Float64("period", 0.05, "control period in seconds")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		out      = flag.String("o", "", "save the trained policy to this path")
		load     = flag.String("load", "", "load a saved policy instead of training")
	)
	flag.Parse()

	if err := run(*scenario, *episodes, *duration, *period, *seed, *out, *load); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrain:", err)
		os.Exit(1)
	}
}

func run(scenario string, episodes int, duration, period float64, seed uint64, out, load string) error {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return err
	}
	spec, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return err
	}
	cfg := sim.Config{PeriodS: period, DurationS: duration, Seed: seed}

	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		return err
	}

	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		snap, err := core.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		// One decision materializes the agents so the snapshot can land.
		if _, err := sim.Run(chip, scen, policy, sim.Config{PeriodS: period, DurationS: period, Seed: seed}); err != nil {
			return err
		}
		if err := policy.Restore(snap); err != nil {
			return err
		}
		policy.SetLearning(false)
		fmt.Printf("loaded policy from %s\n", load)
	} else {
		fmt.Printf("training on %s for %d episodes of %.0fs...\n", scenario, episodes, duration)
		tr, err := core.Train(chip, scen, policy, cfg, episodes)
		if err != nil {
			return err
		}
		first, last := tr.EnergyPerQoS[0], tr.EnergyPerQoS[len(tr.EnergyPerQoS)-1]
		fmt.Printf("energy/QoS: episode 1 = %.4f, episode %d = %.4f\n", first, episodes, last)
		policy.SetLearning(false)
	}

	res, err := sim.Run(chip, scen, policy, cfg)
	if err != nil {
		return err
	}
	s := res.QoS
	fmt.Printf("evaluation on %s: energy/QoS=%.4f meanQoS=%.4f violations=%.2f%% energy=%.1fJ\n",
		scenario, s.EnergyPerQoS, s.MeanQoS, 100*s.ViolationRate, s.TotalEnergyJ)

	if out != "" {
		snap, err := policy.Snapshot()
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := snap.Encode(f); err != nil {
			return err
		}
		fmt.Printf("saved policy to %s\n", out)
	}
	return nil
}
