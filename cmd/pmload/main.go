// Command pmload drives a fleet of simulated devices against a pmserve
// instance and reports decision throughput and latency quantiles.
//
// Two modes:
//
//   - -addr http://host:port targets a running pmserve (the CI smoke job);
//   - without -addr it self-hosts: trains a policy, serves it on a loopback
//     listener, and load-tests its own server — the one-command form of the
//     `serve` experiment that produces BENCH_pr4.json.
//
// Usage:
//
//	pmload -devices 50 -duration 2s -out BENCH_pr4.json
//	pmload -addr http://127.0.0.1:7421 -devices 1000 -duration 5s
//
// Exit status is non-zero when any device observed an error or when no
// decisions were served — the acceptance gate the smoke job relies on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlpm/internal/bench"
	"rlpm/internal/serve"
)

// report is the BENCH_pr4.json document.
type report struct {
	GeneratedAt string             `json:"generated_at"`
	Mode        string             `json:"mode"`
	Scenario    string             `json:"scenario"`
	Runs        []bench.ServeResult `json:"runs"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server URL; empty self-hosts a freshly trained server")
		devices  = flag.Int("devices", 50, "simulated device count")
		duration = flag.Duration("duration", 2*time.Second, "load window")
		scenario = flag.String("scenario", "gaming", "workload scenario each device runs")
		seed     = flag.Uint64("seed", 1, "base seed for per-device workload/exploration streams")
		epsilon  = flag.Float64("epsilon", 0, "per-session exploration rate")
		backends = flag.String("backends", "sw", "self-hosted mode: comma-free backend list as repeated runs, 'sw', 'hw', or 'both'")
		out      = flag.String("out", "", "write the JSON report here (e.g. BENCH_pr4.json)")
		quick    = flag.Bool("quick", true, "self-hosted mode: quick training")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scenario:    *scenario,
	}
	var err error
	if *addr != "" {
		rep.Mode = "remote"
		rep.Runs, err = runRemote(ctx, *addr, *devices, *duration, *scenario, *seed, *epsilon)
	} else {
		rep.Mode = "self-hosted"
		rep.Runs, err = runSelfHosted(ctx, *backends, *devices, *duration, *scenario, *seed, *epsilon, *quick)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		os.Exit(1)
	}

	var decisions, errs uint64
	for i := range rep.Runs {
		rep.Runs[i].WriteText(os.Stdout)
		decisions += rep.Runs[i].Report.Decisions
		errs += rep.Runs[i].Report.Errors
	}
	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if decisions == 0 {
		fmt.Fprintln(os.Stderr, "pmload: no decisions served")
		os.Exit(1)
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "pmload: %d device errors\n", errs)
		os.Exit(1)
	}
}

// runRemote load-tests an already-running server.
func runRemote(ctx context.Context, addr string, devices int, duration time.Duration, scenario string, seed uint64, epsilon float64) ([]bench.ServeResult, error) {
	lr, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:  addr,
		Devices:  devices,
		Duration: duration,
		Scenario: scenario,
		Seed:     seed,
		Epsilon:  epsilon,
	})
	if err != nil {
		return nil, err
	}
	backend := "remote"
	if lr.Server != nil && lr.Server.Backend != "" {
		backend = lr.Server.Backend
	}
	return []bench.ServeResult{{Backend: backend, Report: *lr}}, nil
}

// runSelfHosted trains, serves, and load-tests each requested backend in
// turn — the HW-vs-SW serving A/B when "both" is asked for.
func runSelfHosted(ctx context.Context, backends string, devices int, duration time.Duration, scenario string, seed uint64, epsilon float64, quick bool) ([]bench.ServeResult, error) {
	var list []string
	switch backends {
	case "", "sw":
		list = []string{"sw"}
	case "hw":
		list = []string{"hw"}
	case "both":
		list = []string{"sw", "hw"}
	default:
		return nil, fmt.Errorf("unknown -backends %q (want sw, hw, or both)", backends)
	}
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	var runs []bench.ServeResult
	for _, b := range list {
		r, err := bench.RunServe(ctx, bench.ServeOptions{
			Options:  opt,
			Devices:  devices,
			Duration: duration,
			Backend:  b,
			Epsilon:  epsilon,
			Scenario: scenario,
		})
		if err != nil {
			return nil, fmt.Errorf("backend %s: %w", b, err)
		}
		runs = append(runs, *r)
	}
	return runs, nil
}
