// Command pmload drives a fleet of simulated devices against a pmserve
// instance and reports decision throughput and latency quantiles.
//
// Two modes:
//
//   - -addr http://host:port targets a running pmserve (the CI smoke job);
//     add -proto bin -bin-addr host:port to drive its binary listener;
//   - without -addr it self-hosts: trains a policy, serves it on a loopback
//     listener, and load-tests its own server — the one-command form of the
//     `serve` experiment that produces BENCH_pr6.json.
//
// -proto selects the decision transport: json (HTTP), bin (the
// internal/wire binary protocol), or both — which runs the same fleet over
// each transport in turn and reports speedup_bin_vs_json.
//
// -periods-per-frame K (bin only, K > 1) adds a batched bin run where each
// decide frame carries K control periods' observations and returns K level
// vectors; the report then also carries speedup_batched_vs_bin.
//
// Usage:
//
//	pmload -devices 50 -duration 2s -proto both -periods-per-frame 4 -out BENCH_pr8.json
//	pmload -addr http://127.0.0.1:7421 -devices 1000 -duration 5s
//	pmload -addr http://127.0.0.1:7421 -proto bin -bin-addr 127.0.0.1:7422
//
// Exit status is non-zero when any device observed an error or when no
// decisions were served — the acceptance gate the smoke job relies on.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rlpm/internal/bench"
	"rlpm/internal/chaos"
	"rlpm/internal/core"
	"rlpm/internal/serve"
	"rlpm/internal/shard"
)

// report is the BENCH_pr6.json document.
type report struct {
	GeneratedAt string              `json:"generated_at"`
	Mode        string              `json:"mode"`
	Scenario    string              `json:"scenario"`
	Runs        []bench.ServeResult `json:"runs"`
	// SpeedupBinVsJSON is bin decisions/sec over json decisions/sec when
	// the run set contains one of each on the same backend; omitted
	// otherwise. Only single-period bin runs enter this ratio.
	SpeedupBinVsJSON float64 `json:"speedup_bin_vs_json,omitempty"`
	// SpeedupBatchedVsBin is multi-period-bin decisions/sec over
	// single-period-bin decisions/sec when the run set contains both on
	// the same backend; omitted otherwise.
	SpeedupBatchedVsBin float64 `json:"speedup_batched_vs_bin,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server URL; empty self-hosts a freshly trained server")
		binAddr  = flag.String("bin-addr", "", "remote mode: the server's binary listener (host:port), required with -proto bin")
		proto    = flag.String("proto", "json", "decision transport: json, bin, or both (self-hosted only)")
		devices  = flag.Int("devices", 50, "simulated device count")
		duration = flag.Duration("duration", 2*time.Second, "load window")
		scenario = flag.String("scenario", "gaming", "workload scenario each device runs")
		seed     = flag.Uint64("seed", 1, "base seed for per-device workload/exploration streams")
		epsilon  = flag.Float64("epsilon", 0, "per-session exploration rate")
		backends = flag.String("backends", "sw", "self-hosted mode: 'sw', 'hw', or 'both'")
		ppf      = flag.Int("periods-per-frame", 1, "bundle this many control periods per bin decide frame; >1 adds a batched bin run next to the single-period one")
		out      = flag.String("out", "", "write the JSON report here (e.g. BENCH_pr6.json)")
		quick    = flag.Bool("quick", true, "self-hosted mode: quick training")

		workers = flag.Int("workers", 0, "bound the load-generator goroutines; 0 runs one per device (large -devices needs this)")

		shardCurve  = flag.String("shard-curve", "", "comma-separated shard counts (e.g. '1,2,4'): self-host an N-shard fleet + router per count and record the scaling curve")
		shardChaos  = flag.Bool("shard-chaos", false, "run the sharded rebalance harness: N shards behind a router, one seeded remove and one add mid-run, differential oracle")
		shards      = flag.Int("shards", 2, "shard-chaos: initial shard count")
		kill        = flag.Bool("kill", false, "shard-chaos: kill the victim shard abruptly instead of draining it")
		shardFaults = flag.Bool("shard-faults", false, "shard-chaos: also inject the -drop/-partial/-corrupt/-latency fault schedule between devices and router")

		learnMode = flag.Bool("learn", false, "run the seeded training-while-serving harness: a frozen-vs-learning device A/B with live Q-updates, then verify determinism and that the learned checkpoint reloads")
		learnTick = flag.Int("learn-tick-every", 0, "learn mode: drain the learner every this many fleet rounds (0 = default)")

		chaosMode = flag.Bool("chaos", false, "run the chaos harness instead of a load test: inject faults, optionally restart the server mid-run, and verify zero lost/duplicated/changed decisions")
		periods   = flag.Int("periods", 200, "chaos mode: decisions per device")
		restart   = flag.String("restart", "", "chaos mode: kill the server mid-run: 'crash' (abrupt) or 'drain' (graceful + checkpoint); empty never")
		dropRate  = flag.Float64("drop", 0.02, "chaos mode: per-event connection-drop probability")
		partRate  = flag.Float64("partial", 0.05, "chaos mode: per-write partial-write probability")
		corrRate  = flag.Float64("corrupt", 0, "chaos mode: per-write frame-corruption probability")
		latRate   = flag.Float64("latency", 0.05, "chaos mode: per-write latency-spike probability")
		latFor    = flag.Duration("latency-for", 2*time.Millisecond, "chaos mode: latency-spike duration")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *learnMode {
		os.Exit(runLearnMode(*devices, *periods, *scenario, *seed, *epsilon, *learnTick, *quick, *out))
	}
	if *chaosMode {
		faults := chaos.Config{
			Seed:             *seed,
			DropRate:         *dropRate,
			PartialWriteRate: *partRate,
			CorruptRate:      *corrRate,
			LatencyRate:      *latRate,
			LatencyFor:       *latFor,
		}
		os.Exit(runChaosMode(ctx, *proto, *devices, *periods, *scenario, *seed, *epsilon, *restart, *quick, *out, faults))
	}
	if *shardChaos {
		var faults chaos.Config
		if *shardFaults {
			faults = chaos.Config{
				Seed:             *seed,
				DropRate:         *dropRate,
				PartialWriteRate: *partRate,
				CorruptRate:      *corrRate,
				LatencyRate:      *latRate,
				LatencyFor:       *latFor,
			}
		}
		os.Exit(runShardChaos(ctx, *proto, *shards, *devices, *periods, *scenario, *seed, *epsilon, *kill, *quick, *out, faults))
	}
	if *shardCurve != "" {
		os.Exit(runShardCurve(ctx, *shardCurve, *devices, *workers, *duration, *scenario, *seed, *epsilon, *quick, *out))
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scenario:    *scenario,
	}
	var err error
	if *addr != "" {
		rep.Mode = "remote"
		rep.Runs, err = runRemote(ctx, *addr, *binAddr, *proto, *devices, *workers, *duration, *scenario, *seed, *epsilon, *ppf)
	} else {
		rep.Mode = "self-hosted"
		rep.Runs, err = runSelfHosted(ctx, *backends, *proto, *devices, *duration, *scenario, *seed, *epsilon, *quick, *ppf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		os.Exit(1)
	}
	rep.SpeedupBinVsJSON = speedup(rep.Runs)
	rep.SpeedupBatchedVsBin = speedupBatched(rep.Runs)

	var decisions, errs uint64
	for i := range rep.Runs {
		rep.Runs[i].WriteText(os.Stdout)
		decisions += rep.Runs[i].Report.Decisions
		errs += rep.Runs[i].Report.Errors
	}
	if rep.SpeedupBinVsJSON > 0 {
		fmt.Printf("speedup bin vs json: %.2fx\n", rep.SpeedupBinVsJSON)
	}
	if rep.SpeedupBatchedVsBin > 0 {
		fmt.Printf("speedup batched bin (%d periods/frame) vs bin: %.2fx\n", *ppf, rep.SpeedupBatchedVsBin)
	}
	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if decisions == 0 {
		fmt.Fprintln(os.Stderr, "pmload: no decisions served")
		os.Exit(1)
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "pmload: %d device errors\n", errs)
		os.Exit(1)
	}
}

// runLearnMode trains a quick model and hands it to the seeded
// training-while-serving harness: half the fleet learns (decisions follow
// the live tables, rewards feed Q-updates), half is frozen on the
// construction-time model as the control arm. The run is executed twice
// with the same seed, and the smoke gates are: updates were applied, no
// samples were dropped or rejected, both runs produced identical decision
// traces and bit-identical learned checkpoints, and the learned checkpoint
// loads back as a serving model.
func runLearnMode(devices, periods int, scenario string, seed uint64, epsilon float64, tickEvery int, quick bool, out string) int {
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	model, _, err := bench.TrainedServeModel(bench.ServeOptions{Options: opt, Scenario: scenario})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	if epsilon == 0 {
		epsilon = 0.2 // off-greedy samples are what the learner feeds on
	}
	cfg := serve.LearnLoadConfig{
		Devices:   devices,
		Periods:   periods,
		Scenario:  scenario,
		Seed:      seed,
		Epsilon:   epsilon,
		TickEvery: tickEvery,
	}
	rep, err := serve.RunLearn(model, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	rep2, err := serve.RunLearn(model, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload: replay run:", err)
		return 1
	}

	fmt.Printf("learn: devices=%d periods=%d updates=%d swaps=%d policy_version=%d dropped=%d rejected=%d\n",
		rep.Devices, rep.Periods, rep.Updates, rep.Swaps, rep.PolicyVersion, rep.Dropped, rep.Rejected)
	for _, arm := range []struct {
		name string
		a    serve.LearnArm
	}{{"learning", rep.Learning}, {"frozen", rep.Frozen}} {
		fmt.Printf("learn: arm=%-8s devices=%d rewards=%d mean_reward=%.4f energy=%.4fJ mean_qos=%.4f\n",
			arm.name, arm.a.Devices, arm.a.Rewards, arm.a.MeanReward, arm.a.EnergyJ, arm.a.MeanQoS)
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pmload: learn invariant violated: "+format+"\n", args...)
		return 1
	}
	if rep.Updates == 0 {
		return fail("no Q-updates applied")
	}
	if rep.Dropped > 0 || rep.Rejected > 0 {
		return fail("%d samples dropped, %d rejected", rep.Dropped, rep.Rejected)
	}
	if !bytes.Equal(rep.Checkpoint, rep2.Checkpoint) {
		return fail("seeded replay produced different learned tables")
	}
	for i := range rep.Traces {
		if !slices.Equal(rep.Traces[i], rep2.Traces[i]) {
			return fail("seeded replay diverged on device %d's decisions", i)
		}
	}
	dir, err := os.MkdirTemp("", "pmload-learn-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "learned.ckpt")
	if err := os.WriteFile(ckpt, rep.Checkpoint, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	if _, err := serve.LoadModel(ckpt, core.DefaultConfig()); err != nil {
		return fail("learned checkpoint does not reload: %v", err)
	}

	if out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
	}
	fmt.Println("learn: all invariants held (replay deterministic, checkpoint reloads)")
	return 0
}

// runChaosMode trains a quick model and hands it to the chaos harness.
// Exit status is non-zero when any resilience invariant is violated —
// a lost, duplicated, or changed decision, a leaked goroutine, or an
// unreadable drain checkpoint.
func runChaosMode(ctx context.Context, proto string, devices, periods int, scenario string, seed uint64, epsilon float64, restart string, quick bool, out string, faults chaos.Config) int {
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	model, _, err := bench.TrainedServeModel(bench.ServeOptions{Options: opt, Scenario: scenario})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	// Chaos decisions must match the fault-free oracle with meaningful
	// exploration in the loop; default it on unless the user chose.
	if epsilon == 0 {
		epsilon = 0.2
	}
	cfg := serve.ChaosConfig{
		Proto:    proto,
		Devices:  devices,
		Periods:  periods,
		Seed:     seed,
		Scenario: scenario,
		Epsilon:  epsilon,
		Faults:   faults,
		Restart:  restart,
	}
	if restart == "drain" {
		dir, err := os.MkdirTemp("", "pmload-chaos-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		cfg.CheckpointPath = filepath.Join(dir, "drain.ckpt")
	}
	rep, cerr := serve.RunChaos(ctx, model, cfg)
	if rep != nil {
		fmt.Printf("chaos: proto=%s devices=%d periods=%d decisions=%d retries=%d resumes=%d restarts=%d mismatches=%d in %.2fs\n",
			rep.Proto, rep.Devices, rep.Periods, rep.Decisions, rep.Retries, rep.Resumes, rep.Restarts, rep.Mismatches, rep.DurationS)
		fmt.Printf("chaos: proxy conns=%d drops=%d stalls=%d partials=%d corrupts=%d delays=%d\n",
			rep.ProxyConns, rep.ProxyDrops, rep.ProxyStalls, rep.ProxyPartials, rep.ProxyCorrupts, rep.ProxyDelays)
		if out != "" {
			raw, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(out, append(raw, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmload:", err)
				return 1
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if cerr != nil {
		fmt.Fprintln(os.Stderr, "pmload: chaos invariant violated:", cerr)
		return 1
	}
	fmt.Println("chaos: all invariants held")
	return 0
}

// runShardChaos trains a quick model and hands it to the sharded rebalance
// harness: N checkpoint-hydrated shards behind a router, one seeded shard
// remove (graceful or -kill) and one add mid-run, and a single-process
// differential oracle. Exit status is non-zero when any invariant is
// violated — a lost, duplicated, or changed decision, an unmoved fleet, or
// a leaked goroutine.
func runShardChaos(ctx context.Context, proto string, shards, devices, periods int, scenario string, seed uint64, epsilon float64, kill, quick bool, out string, faults chaos.Config) int {
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	model, _, err := bench.TrainedServeModel(bench.ServeOptions{Options: opt, Scenario: scenario})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	if epsilon == 0 {
		epsilon = 0.2 // stateful decisions, so any handoff bug diverges
	}
	rep, rerr := shard.RunRebalance(ctx, model, shard.RebalanceConfig{
		Proto:     proto,
		Shards:    shards,
		Devices:   devices,
		Periods:   periods,
		Seed:      seed,
		Scenario:  scenario,
		Epsilon:   epsilon,
		Rebalance: true,
		Kill:      kill,
		Faults:    faults,
	})
	if rep != nil {
		fmt.Printf("shard-chaos: proto=%s shards=%d devices=%d periods=%d decisions=%d moved=%d resumes=%d removed=%s added=%s mismatches=%d in %.2fs\n",
			rep.Proto, rep.Shards, rep.Devices, rep.Periods, rep.Decisions, rep.Moved, rep.Resumes, rep.Removed, rep.Added, rep.Mismatches, rep.DurationS)
		if out != "" {
			raw, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(out, append(raw, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmload:", err)
				return 1
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if rerr != nil {
		fmt.Fprintln(os.Stderr, "pmload: shard invariant violated:", rerr)
		return 1
	}
	fmt.Println("shard-chaos: all invariants held")
	return 0
}

// shardCurveReport is the BENCH_pr9.json document.
type shardCurveReport struct {
	GeneratedAt string `json:"generated_at"`
	Scenario    string `json:"scenario"`
	*shard.ScaleResult
}

// runShardCurve measures decide throughput at each requested shard count:
// per point it self-hosts an N-shard checkpoint-hydrated fleet plus a
// router, drives the device fleet shard-direct by ring placement, and
// scrapes the router's merged fleet metrics.
func runShardCurve(ctx context.Context, curve string, devices, workers int, duration time.Duration, scenario string, seed uint64, epsilon float64, quick bool, out string) int {
	var counts []int
	for _, f := range strings.Split(curve, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "pmload: bad -shard-curve entry %q\n", f)
			return 1
		}
		counts = append(counts, n)
	}
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	model, _, err := bench.TrainedServeModel(bench.ServeOptions{Options: opt, Scenario: scenario})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmload:", err)
		return 1
	}
	res, serr := shard.RunScale(ctx, model, shard.ScaleConfig{
		ShardCounts: counts,
		Devices:     devices,
		Workers:     workers,
		Duration:    duration,
		Scenario:    scenario,
		Seed:        seed,
		Epsilon:     epsilon,
	})
	for _, pt := range res.Points {
		fleetDecisions := uint64(0)
		if pt.Fleet != nil {
			fleetDecisions = pt.Fleet.Decisions
		}
		fmt.Printf("shards=%d decisions=%d rate=%.0f/s p50=%.3fms p99=%.3fms fleet_decisions=%d\n",
			pt.Shards, pt.Report.Decisions, pt.Report.DecisionsPerSec,
			pt.Report.LatencyNs.P50/1e6, pt.Report.LatencyNs.P99/1e6, fleetDecisions)
	}
	if out != "" && len(res.Points) > 0 {
		rep := shardCurveReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Scenario:    scenario,
			ScaleResult: res,
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmload:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
	}
	if serr != nil {
		fmt.Fprintln(os.Stderr, "pmload:", serr)
		return 1
	}
	for _, pt := range res.Points {
		if pt.Report.Errors > 0 || pt.Report.Decisions == 0 {
			fmt.Fprintf(os.Stderr, "pmload: shards=%d saw %d errors, %d decisions\n", pt.Shards, pt.Report.Errors, pt.Report.Decisions)
			return 1
		}
	}
	return 0
}

// speedup returns bin-over-json decisions/sec when the run set holds one
// json and one single-period bin run against the same backend; 0
// otherwise. Multi-period bin runs are excluded so the ratio compares the
// transports at identical framing; speedupBatched covers the framing gain.
func speedup(runs []bench.ServeResult) float64 {
	byProto := map[string]*bench.ServeResult{}
	for i := range runs {
		r := &runs[i]
		if r.PeriodsPerFrame > 1 {
			continue
		}
		if prev, ok := byProto[r.Proto]; ok && prev.Backend != r.Backend {
			return 0 // mixed backends: no single meaningful ratio
		}
		byProto[r.Proto] = r
	}
	j, b := byProto["json"], byProto["bin"]
	if j == nil || b == nil || j.Backend != b.Backend || j.Report.DecisionsPerSec == 0 {
		return 0
	}
	return b.Report.DecisionsPerSec / j.Report.DecisionsPerSec
}

// speedupBatched returns multi-period-bin over single-period-bin
// decisions/sec when the run set holds one of each against the same
// backend; 0 otherwise.
func speedupBatched(runs []bench.ServeResult) float64 {
	var single, batched *bench.ServeResult
	for i := range runs {
		r := &runs[i]
		if r.Proto != "bin" {
			continue
		}
		if r.PeriodsPerFrame > 1 {
			if batched != nil {
				return 0
			}
			batched = r
		} else {
			if single != nil {
				return 0
			}
			single = r
		}
	}
	if single == nil || batched == nil || single.Backend != batched.Backend || single.Report.DecisionsPerSec == 0 {
		return 0
	}
	return batched.Report.DecisionsPerSec / single.Report.DecisionsPerSec
}

// protoList expands -proto into the transports to run.
func protoList(proto string) ([]string, error) {
	switch proto {
	case "", "json":
		return []string{"json"}, nil
	case "bin":
		return []string{"bin"}, nil
	case "both":
		return []string{"json", "bin"}, nil
	default:
		return nil, fmt.Errorf("unknown -proto %q (want json, bin, or both)", proto)
	}
}

// runRemote load-tests an already-running server. A bin transport with
// ppf > 1 is measured twice — single-period first, then batched — so the
// report carries the framing speedup alongside the raw transport numbers.
func runRemote(ctx context.Context, addr, binAddr, proto string, devices, workers int, duration time.Duration, scenario string, seed uint64, epsilon float64, ppf int) ([]bench.ServeResult, error) {
	protos, err := protoList(proto)
	if err != nil {
		return nil, err
	}
	var runs []bench.ServeResult
	for _, p := range protos {
		periods := []int{1}
		if p == "bin" && ppf > 1 {
			periods = append(periods, ppf)
		}
		for _, k := range periods {
			lr, err := serve.RunLoad(ctx, serve.LoadConfig{
				BaseURL:         addr,
				Proto:           p,
				BinAddr:         binAddr,
				Devices:         devices,
				Workers:         workers,
				Duration:        duration,
				Scenario:        scenario,
				Seed:            seed,
				Epsilon:         epsilon,
				PeriodsPerFrame: k,
			})
			if err != nil {
				return nil, fmt.Errorf("proto %s periods %d: %w", p, k, err)
			}
			backend := "remote"
			if lr.Server != nil && lr.Server.Backend != "" {
				backend = lr.Server.Backend
			}
			runs = append(runs, bench.ServeResult{Backend: backend, Proto: p, PeriodsPerFrame: lr.PeriodsPerFrame, Report: *lr})
		}
	}
	return runs, nil
}

// runSelfHosted trains, serves, and load-tests each requested backend ×
// transport in turn — the HW-vs-SW and json-vs-bin A/Bs in one binary.
func runSelfHosted(ctx context.Context, backends, proto string, devices int, duration time.Duration, scenario string, seed uint64, epsilon float64, quick bool, ppf int) ([]bench.ServeResult, error) {
	var list []string
	switch backends {
	case "", "sw":
		list = []string{"sw"}
	case "hw":
		list = []string{"hw"}
	case "both":
		list = []string{"sw", "hw"}
	default:
		return nil, fmt.Errorf("unknown -backends %q (want sw, hw, or both)", backends)
	}
	protos, err := protoList(proto)
	if err != nil {
		return nil, err
	}
	opt := bench.DefaultOptions()
	opt.Quick = quick
	opt.Seed = seed
	var runs []bench.ServeResult
	for _, b := range list {
		for _, p := range protos {
			periods := []int{1}
			if p == "bin" && ppf > 1 {
				// Measure single-period bin first, then the batched framing,
				// so the report carries the framing speedup.
				periods = append(periods, ppf)
			}
			for _, k := range periods {
				r, err := bench.RunServe(ctx, bench.ServeOptions{
					Options:         opt,
					Devices:         devices,
					Duration:        duration,
					Backend:         b,
					Proto:           p,
					Epsilon:         epsilon,
					Scenario:        scenario,
					PeriodsPerFrame: k,
				})
				if err != nil {
					return nil, fmt.Errorf("backend %s proto %s periods %d: %w", b, p, k, err)
				}
				runs = append(runs, *r)
			}
		}
	}
	return runs, nil
}
