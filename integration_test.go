package rlpm_test

// End-to-end integration tests: cross-package invariants that must hold
// for the evaluation to be meaningful. These complement the per-package
// unit tests by exercising the full chip → workload → governor loop.

import (
	"math"
	"testing"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/replay"
	"rlpm/internal/sched"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func newChip(t *testing.T) *soc.Chip {
	t.Helper()
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func newScenario(t *testing.T, name string, clusters int, seed uint64) workload.Scenario {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := workload.New(spec, clusters, seed)
	if err != nil {
		t.Fatal(err)
	}
	return scen
}

// TestEveryGovernorOnEveryScenario is the smoke matrix: all 8 governors ×
// all 7 scenarios × both chips complete without error and produce sane
// summaries.
func TestEveryGovernorOnEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	cfg := sim.Config{PeriodS: 0.05, DurationS: 10, Seed: 1}
	govNames := append(governor.BaselineNames(), "schedutil")
	for _, chipSpec := range []struct {
		name     string
		spec     soc.ChipSpec
		clusters int
	}{
		{"bigLITTLE", soc.DefaultChipSpec(), 2},
		{"symmetric", soc.SymmetricChipSpec(), 1},
		{"gpu3", soc.GPUChipSpec(), 3},
	} {
		for _, scName := range workload.Names() {
			for _, gName := range govNames {
				chip, err := soc.NewChip(chipSpec.spec)
				if err != nil {
					t.Fatal(err)
				}
				g, err := governor.New(gName)
				if err != nil {
					t.Fatal(err)
				}
				scen := newScenario(t, scName, chipSpec.clusters, 1)
				res, err := sim.Run(chip, scen, g, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", chipSpec.name, scName, gName, err)
				}
				q := res.QoS
				if q.Periods != 200 {
					t.Fatalf("%s/%s/%s: %d periods", chipSpec.name, scName, gName, q.Periods)
				}
				if q.TotalEnergyJ <= 0 || math.IsNaN(q.TotalEnergyJ) {
					t.Fatalf("%s/%s/%s: energy %v", chipSpec.name, scName, gName, q.TotalEnergyJ)
				}
				if q.MeanQoS < 0 || q.MeanQoS > 1 {
					t.Fatalf("%s/%s/%s: meanQoS %v", chipSpec.name, scName, gName, q.MeanQoS)
				}
			}
		}
	}
}

// TestGovernorEnergyOrdering: every governor's total energy stays at or
// below the performance governor's, for every scenario. (Powersave is NOT
// a lower bound in this model: a saturated cluster wastes energy on work
// that misses its deadline and is dropped.)
func TestGovernorEnergyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	cfg := sim.Config{PeriodS: 0.05, DurationS: 20, Seed: 3}
	for _, scName := range workload.Names() {
		energies := map[string]float64{}
		for _, gName := range governor.BaselineNames() {
			g, _ := governor.New(gName)
			res, err := sim.Run(newChip(t), newScenario(t, scName, 2, 3), g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			energies[gName] = res.QoS.TotalEnergyJ
		}
		for gName, e := range energies {
			if e > energies["performance"]+1e-9 {
				t.Errorf("%s: %s energy %v above performance %v", scName, gName, e, energies["performance"])
			}
		}
	}
}

// TestFullRunDeterminism: a complete RL train+eval cycle twice gives
// bit-identical results — the property EXPERIMENTS.md relies on.
func TestFullRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	run := func() float64 {
		chip := newChip(t)
		scen := newScenario(t, "camera", 2, 5)
		cfg := sim.Config{PeriodS: 0.05, DurationS: 20, Seed: 5}
		p := core.MustPolicy(core.DefaultConfig())
		if _, err := core.Train(chip, scen, p, cfg, 5); err != nil {
			t.Fatal(err)
		}
		p.SetLearning(false)
		res, err := sim.Run(chip, scen, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.QoS.EnergyPerQoS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("full pipeline not deterministic: %v vs %v", a, b)
	}
}

// TestHWPolicyAgreesWithSWInClosedLoop: the deployed accelerator must
// track the software policy through the full loop, not just in unit tests.
func TestHWPolicyAgreesWithSWInClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	chip := newChip(t)
	scen := newScenario(t, "mixed", 2, 7)
	cfg := sim.Config{PeriodS: 0.05, DurationS: 30, Seed: 7}
	coreCfg := core.DefaultConfig()
	p := core.MustPolicy(coreCfg)
	if _, err := core.Train(chip, scen, p, cfg, 15); err != nil {
		t.Fatal(err)
	}
	p.SetLearning(false)
	sw, err := sim.Run(chip, scen, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hwpolicy.FromPolicy(p, coreCfg, bus.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := sim.Run(chip, scen, hw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(hwRes.QoS.EnergyPerQoS-sw.QoS.EnergyPerQoS) / sw.QoS.EnergyPerQoS
	if rel > 0.05 {
		t.Fatalf("closed-loop HW deviates %.1f%% from SW", rel*100)
	}
}

// TestSchedulerStackComposes: workload → HMP scheduler → chip → RL policy
// all stacked together still runs and preserves the QoS floor.
func TestSchedulerStackComposes(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	chip := newChip(t)
	inner := newScenario(t, "browsing", 2, 2)
	scen, err := sched.NewScenario(inner, sched.NewHMP(), sched.CapsOf(chip))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{PeriodS: 0.05, DurationS: 30, Seed: 2}
	p := core.MustPolicy(core.DefaultConfig())
	if _, err := core.Train(chip, scen, p, cfg, 10); err != nil {
		t.Fatal(err)
	}
	p.SetLearning(false)
	res, err := sim.Run(chip, scen, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS.MeanQoS < 0.8 {
		t.Fatalf("stacked run QoS %v too low", res.QoS.MeanQoS)
	}
}

// TestReplayRegressionFixture: a recorded trace replayed through the full
// pipeline reproduces the recorded scenario's result exactly.
func TestReplayRegressionFixture(t *testing.T) {
	live := newScenario(t, "applaunch", 2, 11)
	tr, err := replay.Record(live, 600, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := tr.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{PeriodS: 0.05, DurationS: 30, Seed: 11}
	g, _ := governor.New("interactive")
	a, err := sim.Run(newChip(t), live, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Reset()
	b, err := sim.Run(newChip(t), replayed, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.QoS != b.QoS {
		t.Fatalf("replay fixture diverged: %+v vs %+v", a.QoS, b.QoS)
	}
}

// TestRLPolicyNeverCatastrophicallyWorse: on every scenario the trained
// policy's energy-per-QoS stays within 15% of the best QoS-preserving
// baseline governor and its violation rate below 12% — the "no scenario
// regresses" guard behind Table 1.
func TestRLPolicyNeverCatastrophicallyWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("long training matrix")
	}
	// The Table-1 protocol: 120 s evaluations, 120 training episodes.
	cfg := sim.Config{PeriodS: 0.05, DurationS: 120, Seed: 1}
	for _, scName := range workload.Names() {
		best := math.Inf(1)
		for _, gName := range governor.BaselineNames() {
			g, _ := governor.New(gName)
			res, err := sim.Run(newChip(t), newScenario(t, scName, 2, 1), g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Only QoS-preserving baselines set the bar.
			if res.QoS.ViolationRate < 0.10 && res.QoS.EnergyPerQoS < best {
				best = res.QoS.EnergyPerQoS
			}
		}
		chip := newChip(t)
		scen := newScenario(t, scName, 2, 1)
		trainCfg := cfg
		trainCfg.DurationS = 120
		p := core.MustPolicy(core.DefaultConfig())
		if _, err := core.Train(chip, scen, p, trainCfg, 120); err != nil {
			t.Fatal(err)
		}
		p.SetLearning(false)
		res, err := sim.Run(chip, scen, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.QoS.EnergyPerQoS > best*1.15 {
			t.Errorf("%s: RL E/QoS %.4f more than 15%% above best QoS-preserving baseline %.4f",
				scName, res.QoS.EnergyPerQoS, best)
		}
		if res.QoS.ViolationRate > 0.12 {
			t.Errorf("%s: RL violation rate %.3f above 12%%", scName, res.QoS.ViolationRate)
		}
	}
}
