// Hwoffload: the paper's deployment flow. Train the policy in software,
// upload the Q-table into the modeled FPGA accelerator over the MMIO
// interface, run the whole control loop with decisions made in hardware,
// and report the decision-latency comparison and FPGA resource estimate.
//
//	go run ./examples/hwoffload
package main

import (
	"fmt"
	"log"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 3}
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.ByName("camera")
	if err != nil {
		log.Fatal(err)
	}
	scen, err := workload.New(spec, chip.NumClusters(), 3)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Train in software.
	coreCfg := core.DefaultConfig()
	policy, err := core.NewPolicy(coreCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training software policy on the camera scenario...")
	trainCfg := cfg
	trainCfg.DurationS = 120
	if _, err := core.Train(chip, scen, policy, trainCfg, 120); err != nil {
		log.Fatal(err)
	}
	policy.SetLearning(false)
	swRes, err := sim.Run(chip, scen, policy, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy: quantize the Q-tables to Q16.16 and upload them through
	// the AXI-Lite register file into the accelerator's BRAM.
	hw, err := hwpolicy.FromPolicy(policy, coreCfg, bus.DefaultConfig(), hwpolicy.DefaultParams().Banks)
	if err != nil {
		log.Fatal(err)
	}
	hwRes, err := sim.Run(chip, scen, hw, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %10s %12s\n", "implementation", "energy/QoS", "meanQoS", "violations")
	fmt.Printf("%-22s %14.4f %10.4f %11.2f%%\n", "software (float64)",
		swRes.QoS.EnergyPerQoS, swRes.QoS.MeanQoS, 100*swRes.QoS.ViolationRate)
	fmt.Printf("%-22s %14.4f %10.4f %11.2f%%\n", "hardware (Q16.16)",
		hwRes.QoS.EnergyPerQoS, hwRes.QoS.MeanQoS, 100*hwRes.QoS.ViolationRate)

	// 3. Decision latency: software model vs measured MMIO transactions.
	n, mean, max := hw.LatencyStats()
	fmt.Printf("\nhardware decisions: %d MMIO transactions, mean %v, max %v\n", n, mean, max)

	drv := hw.Drivers()[0]
	cmp, err := hwpolicy.Compare(hwpolicy.DefaultSWLatency(), drv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software decision kernel: %v  -> hardware transaction: %v  (%.2fx faster)\n",
		cmp.SWDecision, cmp.HWTotal, cmp.SpeedupDecision)
	fmt.Printf("software incl. invocation path: %v  (%.1fx reduction; tail %.1fx)\n",
		cmp.SWTotal, cmp.SpeedupTotal, cmp.SpeedupTail)

	// 4. What the accelerator costs on the FPGA.
	res, err := hwpolicy.EstimateResources(drv.Accel().Params())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFPGA cost per cluster accelerator: %v\n", res)
}
