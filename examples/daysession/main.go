// Daysession: a compressed day of phone use — idle, browsing, video,
// gaming, camera, navigation — played back to back as one composite
// scenario. The policy learns online across the whole session (no
// per-scenario training), which is the deployment reality: one table must
// serve whatever the user does next.
//
//	go run ./examples/daysession
package main

import (
	"fmt"
	"log"

	"rlpm/internal/battery"
	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	cfg := sim.Config{PeriodS: 0.05, DurationS: 140, Seed: 13}

	// Baselines on the session.
	fmt.Printf("%-13s %14s %10s %12s %14s\n", "governor", "energy/QoS", "meanQoS", "violations", "battery@3W-equiv")
	for _, name := range []string{"performance", "ondemand", "interactive"} {
		g, err := governor.New(name)
		if err != nil {
			log.Fatal(err)
		}
		report(run(g, cfg), cfg)
	}

	// The RL policy learns online across the whole session: several loops
	// of the day warm the single shared table.
	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	chip := mustChip()
	scen := mustSession()
	if _, err := core.Train(chip, scen, policy, cfg, 120); err != nil {
		log.Fatal(err)
	}
	policy.SetLearning(false)
	report(run(policy, cfg), cfg)
}

func mustChip() *soc.Chip {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		log.Fatal(err)
	}
	return chip
}

func mustSession() workload.Scenario {
	s, err := workload.DaySession(2, 13)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func run(g sim.Governor, cfg sim.Config) sim.Result {
	res, err := sim.Run(mustChip(), mustSession(), g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func report(r sim.Result, cfg sim.Config) {
	meanPower := r.QoS.TotalEnergyJ / cfg.DurationS
	hours, err := battery.LifeHours(battery.DefaultSpec(), meanPower)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-13s %14.4f %10.4f %11.2f%% %13.1fh\n",
		r.Governor, r.QoS.EnergyPerQoS, r.QoS.MeanQoS, 100*r.QoS.ViolationRate, hours)
}
