// Quickstart: simulate a mobile MPSoC running a gaming workload under the
// Linux ondemand governor and under the RL power-management policy, and
// compare energy per unit QoS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	// 1. Build the default big.LITTLE chip model.
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick a workload scenario (deterministic for a given seed).
	spec, err := workload.ByName("gaming")
	if err != nil {
		log.Fatal(err)
	}
	scen, err := workload.New(spec, chip.NumClusters(), 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}

	// 3. Baseline: the Linux ondemand governor.
	od, err := governor.New("ondemand")
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := sim.Run(chip, scen, od, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The RL policy: train online for a few episodes, then freeze and
	// evaluate.
	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	trainCfg := cfg
	trainCfg.DurationS = 120 // longer episodes converge the table
	if _, err := core.Train(chip, scen, policy, trainCfg, 120); err != nil {
		log.Fatal(err)
	}
	policy.SetLearning(false)
	rl, err := sim.Run(chip, scen, policy, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare.
	fmt.Printf("%-12s %14s %10s %10s\n", "governor", "energy/QoS", "energy(J)", "violations")
	for _, r := range []sim.Result{baseline, rl} {
		fmt.Printf("%-12s %14.4f %10.1f %9.2f%%\n",
			r.Governor, r.QoS.EnergyPerQoS, r.QoS.TotalEnergyJ, 100*r.QoS.ViolationRate)
	}
	imp := 100 * (baseline.QoS.EnergyPerQoS - rl.QoS.EnergyPerQoS) / baseline.QoS.EnergyPerQoS
	fmt.Printf("\nRL policy uses %.1f%% less energy per unit QoS than ondemand\n", imp)
	fmt.Printf("while dropping %.1fx fewer critical frames.\n",
		baseline.QoS.ViolationRate/rl.QoS.ViolationRate)
}
