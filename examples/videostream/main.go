// Videostream: a QoS-sensitive video playback session. Shows how the RL
// policy finds the "just enough" operating points for a steady periodic
// workload, compared against the full baseline governor set, and prints
// the per-phase OPP residency the policy learned.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/trace"
	"rlpm/internal/workload"
)

func main() {
	cfg := sim.Config{PeriodS: 0.05, DurationS: 90, Seed: 7}

	fmt.Println("video playback, 90 s, all governors:")
	fmt.Printf("%-13s %14s %10s %12s\n", "governor", "energy/QoS", "meanQoS", "violations")

	for _, name := range append(governor.BaselineNames(), "schedutil") {
		g, err := governor.New(name)
		if err != nil {
			log.Fatal(err)
		}
		res := mustRun(g, cfg)
		printRow(res)
	}

	// Train and evaluate the RL policy.
	chip := mustChip()
	scen := mustScenario(chip)
	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	trainCfg := cfg
	trainCfg.DurationS = 120
	if _, err := core.Train(chip, scen, policy, trainCfg, 120); err != nil {
		log.Fatal(err)
	}
	policy.SetLearning(false)
	res := mustRun(policy, cfg)
	printRow(res)

	// Show where the learned policy spends its time: OPP residency.
	rec, err := trace.NewRecorder(sim.RecorderColumns(chip.NumClusters())...)
	if err != nil {
		log.Fatal(err)
	}
	traceCfg := cfg
	traceCfg.Recorder = rec
	if _, err := sim.Run(chip, scen, policy, traceCfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned OPP residency (fraction of periods at each level):")
	for c := 0; c < chip.NumClusters(); c++ {
		series, err := rec.Series(fmt.Sprintf("level%d", c))
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, chip.Cluster(c).NumLevels())
		for _, v := range series {
			counts[int(v)]++
		}
		fmt.Printf("  %-7s", chip.Cluster(c).Spec().Name)
		for lvl, n := range counts {
			frac := float64(n) / float64(len(series))
			if frac >= 0.005 {
				fmt.Printf(" L%d(%.0f MHz):%4.1f%%", lvl, chip.Cluster(c).OPPAt(lvl).FreqHz/1e6, 100*frac)
			}
		}
		fmt.Println()
	}
}

func mustChip() *soc.Chip {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		log.Fatal(err)
	}
	return chip
}

func mustScenario(chip *soc.Chip) workload.Scenario {
	spec, err := workload.ByName("video")
	if err != nil {
		log.Fatal(err)
	}
	scen, err := workload.New(spec, chip.NumClusters(), 7)
	if err != nil {
		log.Fatal(err)
	}
	return scen
}

func mustRun(g sim.Governor, cfg sim.Config) sim.Result {
	chip := mustChip()
	res, err := sim.Run(chip, mustScenario(chip), g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func printRow(r sim.Result) {
	fmt.Printf("%-13s %14.4f %10.4f %11.2f%%\n",
		r.Governor, r.QoS.EnergyPerQoS, r.QoS.MeanQoS, 100*r.QoS.ViolationRate)
}
