// Adaptive: the paper's key robustness claim — the policy "can flexibly
// manage the system power regardless of the application scenario". Train
// the policy on one scenario, then confront it with a different one and
// let online learning adapt; compare against a policy trained natively on
// the target and against ondemand.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func main() {
	cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 5}

	// Train on browsing.
	source := mustScenario("browsing")
	policy, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on browsing...")
	trainCfg := cfg
	trainCfg.DurationS = 120
	if _, err := core.Train(mustChip(), source, policy, trainCfg, 120); err != nil {
		log.Fatal(err)
	}

	// Confront with gaming, still learning online (the deployment mode in
	// the paper: the policy keeps adapting to system variations).
	target := mustScenario("gaming")
	fmt.Println("switching to gaming with online learning and a fresh exploration boost...")
	policy.BoostExploration(0.15)
	adaptCfg := cfg
	adaptCfg.DurationS = 120
	adaptation, err := core.Train(mustChip(), target, policy, adaptCfg, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %14s %10s\n", "episode", "energy/QoS", "violRate")
	for i := range adaptation.EnergyPerQoS {
		fmt.Printf("%8d %14.4f %10.4f\n", i+1, adaptation.EnergyPerQoS[i], adaptation.ViolationRate[i])
	}

	policy.SetLearning(false)
	transferred := mustRun(policy, target, cfg)

	// References: natively trained policy, and ondemand.
	native, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	nativeCfg := cfg
	nativeCfg.DurationS = 120
	if _, err := core.Train(mustChip(), target, native, nativeCfg, 120); err != nil {
		log.Fatal(err)
	}
	native.SetLearning(false)
	nativeRes := mustRun(native, target, cfg)

	od, err := governor.New("ondemand")
	if err != nil {
		log.Fatal(err)
	}
	odRes := mustRun(od, target, cfg)

	fmt.Printf("\ngaming evaluation:\n%-26s %14s %12s\n", "policy", "energy/QoS", "violations")
	fmt.Printf("%-26s %14.4f %11.2f%%\n", "transferred + adapted", transferred.QoS.EnergyPerQoS, 100*transferred.QoS.ViolationRate)
	fmt.Printf("%-26s %14.4f %11.2f%%\n", "natively trained", nativeRes.QoS.EnergyPerQoS, 100*nativeRes.QoS.ViolationRate)
	fmt.Printf("%-26s %14.4f %11.2f%%\n", "ondemand", odRes.QoS.EnergyPerQoS, 100*odRes.QoS.ViolationRate)
}

func mustChip() *soc.Chip {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		log.Fatal(err)
	}
	return chip
}

func mustScenario(name string) workload.Scenario {
	spec, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	scen, err := workload.New(spec, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	return scen
}

func mustRun(g sim.Governor, scen workload.Scenario, cfg sim.Config) sim.Result {
	res, err := sim.Run(mustChip(), scen, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
