// Package rlpm's root benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §5 for the experiment index). Each
// benchmark runs its experiment once per iteration in quick mode (so
// `go test -bench=.` completes in reasonable time) and reports the
// headline quantity as a custom metric; run cmd/pmbench for the
// full-length numbers recorded in EXPERIMENTS.md.
package rlpm_test

import (
	"testing"

	"rlpm/internal/bench"
)

func quickOpts() bench.Options {
	o := bench.DefaultOptions()
	o.Quick = true
	// Parallel stays 0: each experiment fans its evaluation cells out over
	// GOMAXPROCS workers via internal/bench/engine, with output identical
	// to the serial path.
	return o
}

// BenchmarkTable1EnergyPerQoS regenerates Table 1: energy per unit QoS of
// the six baseline governors vs the RL policy across the seven scenarios.
// Reported metric: average improvement (%) of the RL policy — the paper's
// headline 31.66%.
func BenchmarkTable1EnergyPerQoS(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := bench.RunTable1(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = t.AvgImprovementPct
	}
	b.ReportMetric(last, "improvement-%")
}

// BenchmarkTable2DecisionLatency regenerates Table 2: software vs hardware
// policy decision latency. Reported metrics: the decision speedup (paper:
// 3.92×) and the loaded-system tail reduction (paper: up to 40×).
func BenchmarkTable2DecisionLatency(b *testing.B) {
	var t2 *bench.Table2
	for i := 0; i < b.N; i++ {
		t, err := bench.RunTable2(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		t2 = t
	}
	b.ReportMetric(t2.SpeedupDecision, "decision-x")
	b.ReportMetric(t2.SpeedupTail, "tail-x")
}

// BenchmarkTable3Resources regenerates Table 3: FPGA resource and timing
// estimates across accelerator sizings.
func BenchmarkTable3Resources(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := bench.RunTable3(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "sizings")
}

// BenchmarkFig2Convergence regenerates Fig. 2: the online-learning curve
// on the gaming scenario. Reported metric: 1 if the policy improved from
// the first to the last quarter of training.
func BenchmarkFig2Convergence(b *testing.B) {
	opt := quickOpts()
	opt.Quick = false
	opt.DurationS = 20
	opt.TrainEpisodes = 16
	converged := 0.0
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if f.Converged() {
			converged = 1
		} else {
			converged = 0
		}
	}
	b.ReportMetric(converged, "converged")
}

// BenchmarkFig3EnergyQoSBars regenerates Fig. 3: per-scenario energy and
// QoS for every governor.
func BenchmarkFig3EnergyQoSBars(b *testing.B) {
	var cells int
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig3(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		cells = len(f.Scenarios) * len(f.Governors)
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkFig4Trace regenerates Fig. 4: the OPP/power/QoS time series of
// the RL policy vs ondemand over a gaming window.
func BenchmarkFig4Trace(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig4(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = f.RL.Len()
	}
	b.ReportMetric(float64(rows), "trace-rows")
}

// BenchmarkAblationStateBins regenerates ablation A1: state-space
// granularity vs final energy per QoS.
func BenchmarkAblationStateBins(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationStateBins(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(a.Rows)
	}
	b.ReportMetric(float64(rows), "configs")
}

// BenchmarkAblationPrecision regenerates ablation A2: Q-table precision
// (float64 vs Q16.16 vs coarse) vs policy quality. Reported metric: the
// relative deviation of the Q16.16 deployment from float64 (should be ~0).
func BenchmarkAblationPrecision(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationPrecision(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		sw, hw := a.Rows[0].EnergyPerQoS, a.Rows[1].EnergyPerQoS
		dev = (hw - sw) / sw * 100
	}
	b.ReportMetric(dev, "q16-deviation-%")
}

// BenchmarkAblationLambda regenerates ablation A3: the violation-penalty
// sweep on gaming.
func BenchmarkAblationLambda(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationLambda(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(a.Rows)
	}
	b.ReportMetric(float64(rows), "lambdas")
}

// BenchmarkOracleStatic regenerates the oracle-static reference: the best
// per-scenario fixed OPP pins vs the RL policy.
func BenchmarkOracleStatic(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		o, err := bench.RunOracleStatic(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(o.Rows)
	}
	b.ReportMetric(float64(rows), "scenarios")
}

// BenchmarkAblationSwitchCost regenerates ablation A4: the DVFS
// transition-cost sweep across governors.
func BenchmarkAblationSwitchCost(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationSwitchCost(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(a.Rows)
	}
	b.ReportMetric(float64(rows), "sweep-points")
}

// BenchmarkAblationAlgorithm regenerates ablation A5: Q-learning vs SARSA
// vs Double Q-learning at equal training budget.
func BenchmarkAblationAlgorithm(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationAlgorithm(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(a.Rows)
	}
	b.ReportMetric(float64(rows), "algorithms")
}

// BenchmarkSymmetricChip regenerates the companion-paper symmetric-chip
// evaluation. Reported metric: average improvement (%) of the RL policy.
func BenchmarkSymmetricChip(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		s, err := bench.RunSymmetric(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		imp = s.AvgImprovePct
	}
	b.ReportMetric(imp, "improvement-%")
}

// BenchmarkBatteryLife regenerates the battery-life projection table.
func BenchmarkBatteryLife(b *testing.B) {
	var cells int
	for i := 0; i < b.N; i++ {
		l, err := bench.RunBatteryLife(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		cells = len(l.Scenarios) * len(l.Governors)
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkGPUDomain regenerates the three-domain (LITTLE+big+GPU chip)
// evaluation. Reported metric: average improvement (%) of the RL policy.
func BenchmarkGPUDomain(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		g, err := bench.RunGPUDomain(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		imp = g.AvgImprovePct
	}
	b.ReportMetric(imp, "improvement-%")
}

// BenchmarkAblationObsNoise regenerates ablation A6: the
// utilization-sampling-noise sweep.
func BenchmarkAblationObsNoise(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := bench.RunAblationObsNoise(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(a.Rows)
	}
	b.ReportMetric(float64(rows), "noise-points")
}

// BenchmarkTable1Seeds replicates Table 1 over 3 quick seeds and reports
// the satisfaction-constrained improvement's confidence half-width.
func BenchmarkTable1Seeds(b *testing.B) {
	var ci float64
	for i := 0; i < b.N; i++ {
		s, err := bench.RunTable1Seeds(quickOpts(), 3)
		if err != nil {
			b.Fatal(err)
		}
		ci = s.CIConstrained
	}
	b.ReportMetric(ci, "ci95-halfwidth")
}
