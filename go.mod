module rlpm

go 1.22
