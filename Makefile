GO ?= go

.PHONY: check build vet test race fuzz bench golden

# check is the full CI gate: vet, build, the default test suite (unit +
# determinism + golden), and the race-detector pass over the concurrent
# packages (the experiment engine, the bench cells it runs, and the
# simulator they share).
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench/... ./internal/sim/... ./internal/fault/... ./internal/hwpolicy/...

# fuzz runs the register-file fuzz target for a short smoke window; raise
# FUZZTIME for a longer campaign.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/hwpolicy -run '^$$' -fuzz FuzzAccelRegisterFile -fuzztime $(FUZZTIME)

# bench regenerates the full evaluation through the testing harness.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# golden re-blesses testdata/*.golden after an intentional model change.
golden:
	$(GO) test ./internal/bench -run TestGoldenOutput -update
