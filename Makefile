GO ?= go

.PHONY: check build vet test race staticcheck fuzz cover bench bench-smoke bench-serve bench-shard serve-smoke shard-smoke chaos-smoke learn-smoke experiments golden

# check is the full CI gate: vet, build, the default test suite (unit +
# determinism + golden, in shuffled order), and the race-detector pass over
# the concurrent packages (the experiment engine, the bench cells it runs,
# the simulator they share, and the decision server).
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools via `go run`, so it needs module
# network access (CI has it; offline dev boxes can skip this target).
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# -shuffle=on randomizes test order within each package so hidden
# inter-test state can't survive unnoticed.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/bench/... ./internal/sim/... ./internal/fault/... ./internal/hwpolicy/... ./internal/serve/... ./internal/obs/... ./internal/shard/...

# fuzz runs the fuzz targets for a short smoke window each; raise FUZZTIME
# for a longer campaign.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/hwpolicy -run '^$$' -fuzz FuzzAccelRegisterFile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shard -run '^$$' -fuzz FuzzRingRoute -fuzztime $(FUZZTIME)

# cover enforces the coverage floor (measured at 84.8% when the gate was
# introduced; the floor leaves headroom for timing-dependent paths).
COVER_FLOOR ?= 80.0
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | tail -1
	@$(GO) tool cover -func=coverage.out | tail -1 | \
		awk -v floor=$(COVER_FLOOR) '{gsub(/%/, "", $$NF); if ($$NF+0 < floor) {printf "coverage %.1f%% below floor %.1f%%\n", $$NF, floor; exit 1}}'

# bench measures the hot-path benchmark suite and writes the results as
# machine-readable JSON (the numbers cited in README's Performance table).
BENCH_OUT ?= BENCH_pr3.json
bench:
	$(GO) run ./cmd/pmperf -out $(BENCH_OUT)

# bench-smoke compiles and runs every benchmark exactly once — a fast CI
# guard that the benchmark code itself stays green.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-serve runs the serving experiment: self-host a trained policy on a
# loopback listener, drive it with a simulated device fleet over both the
# HTTP/JSON and binary wire transports (single-period and multi-period bin
# frames), and write throughput + latency quantiles (plus the bin-vs-json
# and batched-vs-bin speedups) to BENCH_pr8.json.
SERVE_OUT ?= BENCH_pr8.json
PERIODS_PER_FRAME ?= 4
bench-serve:
	$(GO) run ./cmd/pmload -proto both -devices 50 -duration 2s -periods-per-frame $(PERIODS_PER_FRAME) -out $(SERVE_OUT)

# serve-smoke is the end-to-end binary check: start pmserve (HTTP + binary
# listeners), load it with pmload over real HTTP and then over the binary
# protocol, scrape /metrics and require populated decide-path histograms on
# both transports, then SIGTERM it and require a clean exit.
serve-smoke:
	$(GO) build -o /tmp/pmserve ./cmd/pmserve
	$(GO) build -o /tmp/pmload ./cmd/pmload
	/tmp/pmserve -addr 127.0.0.1:7421 -listen-bin 127.0.0.1:7422 -quick & \
	SERVE_PID=$$!; \
	/tmp/pmload -addr http://127.0.0.1:7421 -devices 50 -duration 2s || { kill $$SERVE_PID; exit 1; }; \
	/tmp/pmload -addr http://127.0.0.1:7421 -proto bin -bin-addr 127.0.0.1:7422 -devices 50 -duration 2s || { kill $$SERVE_PID; exit 1; }; \
	curl -fsS -o /tmp/metrics.prom http://127.0.0.1:7421/metrics || { kill $$SERVE_PID; exit 1; }; \
	grep -q '# TYPE serve_decide_stage_ns histogram' /tmp/metrics.prom || { kill $$SERVE_PID; exit 1; }; \
	grep -E 'serve_decide_stage_ns_count\{stage="backend"\} [1-9]' /tmp/metrics.prom >/dev/null || { kill $$SERVE_PID; exit 1; }; \
	grep -E 'serve_decide_stage_ns_count\{stage="bin"\} [1-9]' /tmp/metrics.prom >/dev/null || { kill $$SERVE_PID; exit 1; }; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID

# chaos-smoke replays seeded fault schedules (drops, partial writes,
# latency spikes) against a live server under the race detector, including
# a mid-run crash restart and a graceful drain restart, and fails unless
# every decision is acked exactly once and byte-identical to a fault-free
# oracle. The assertions live in pmload -chaos / serve.RunChaos.
chaos-smoke:
	$(GO) run -race ./cmd/pmload -chaos -proto bin -devices 6 -periods 80 -restart crash
	$(GO) run -race ./cmd/pmload -chaos -proto json -devices 4 -periods 60 -restart drain
	$(GO) run -race ./cmd/pmload -shard-chaos -proto bin -kill -shards 3 -devices 8 -periods 90 -shard-faults
	$(GO) run -race ./cmd/pmload -shard-chaos -proto json -shards 2 -devices 6 -periods 60

# learn-smoke runs the training-while-serving harness under the race
# detector: a seeded fleet split into learning and frozen-control arms
# against an online-learning server, run twice. pmload -learn exits
# non-zero unless updates were applied losslessly, both runs produced
# identical decision traces and bit-identical learned checkpoints, and the
# learned checkpoint reloads into a servable model.
learn-smoke:
	$(GO) run -race ./cmd/pmload -learn -devices 8 -periods 120

# shard-smoke is the sharded end-to-end binary check: two pmserve shards,
# a pmrouter fronting them on HTTP + binary, pmload driving the fleet
# through the router on both transports, then a scrape of the router's
# merged /metrics requiring a nonzero decide count on EVERY shard.
shard-smoke:
	$(GO) build -o /tmp/pmserve ./cmd/pmserve
	$(GO) build -o /tmp/pmrouter ./cmd/pmrouter
	$(GO) build -o /tmp/pmload ./cmd/pmload
	/tmp/pmserve -addr 127.0.0.1:7441 -listen-bin 127.0.0.1:7442 -quick -epoch 1 & \
	S0=$$!; \
	/tmp/pmserve -addr 127.0.0.1:7443 -listen-bin 127.0.0.1:7444 -quick -epoch 2 & \
	S1=$$!; \
	/tmp/pmrouter -addr 127.0.0.1:7440 -listen-bin 127.0.0.1:7439 -ring-seed 1 -wait-shards 60s \
		-shard s0=127.0.0.1:7442@127.0.0.1:7441 -shard s1=127.0.0.1:7444@127.0.0.1:7443 & \
	R=$$!; \
	stop='kill $$R $$S0 $$S1 2>/dev/null'; \
	/tmp/pmload -addr http://127.0.0.1:7440 -devices 50 -duration 2s || { eval $$stop; exit 1; }; \
	/tmp/pmload -addr http://127.0.0.1:7440 -proto bin -bin-addr 127.0.0.1:7439 -devices 50 -duration 2s || { eval $$stop; exit 1; }; \
	curl -fsS -o /tmp/router_metrics.prom http://127.0.0.1:7440/metrics || { eval $$stop; exit 1; }; \
	grep -E 'router_shard_decisions_total\{shard="s0"\} [1-9]' /tmp/router_metrics.prom >/dev/null || { eval $$stop; exit 1; }; \
	grep -E 'router_shard_decisions_total\{shard="s1"\} [1-9]' /tmp/router_metrics.prom >/dev/null || { eval $$stop; exit 1; }; \
	grep -E '^serve_decisions_total [1-9]' /tmp/router_metrics.prom >/dev/null || { eval $$stop; exit 1; }; \
	kill -TERM $$R; wait $$R; \
	kill -TERM $$S0 $$S1; wait $$S0 $$S1

# bench-shard records the N-shard scaling curve: per shard count it
# self-hosts a checkpoint-hydrated fleet plus a router, drives 100k+
# simulated devices shard-direct by ring placement (bounded workers), and
# stores throughput, latency quantiles, and the router's merged fleet
# metrics in BENCH_pr9.json.
SHARD_OUT ?= BENCH_pr9.json
SHARD_CURVE ?= 1,2,4
bench-shard:
	$(GO) run ./cmd/pmload -shard-curve $(SHARD_CURVE) -devices 100000 -workers 64 -duration 10s -out $(SHARD_OUT)

# experiments regenerates the full evaluation through the testing harness.
experiments:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# golden re-blesses testdata/*.golden after an intentional model change.
golden:
	$(GO) test ./internal/bench -run TestGoldenOutput -update
