GO ?= go

.PHONY: check build vet test race bench golden

# check is the full CI gate: vet, build, the default test suite (unit +
# determinism + golden), and the race-detector pass over the concurrent
# packages (the experiment engine, the bench cells it runs, and the
# simulator they share).
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench/... ./internal/sim/...

# bench regenerates the full evaluation through the testing harness.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# golden re-blesses testdata/*.golden after an intentional model change.
golden:
	$(GO) test ./internal/bench -run TestGoldenOutput -update
