GO ?= go

.PHONY: check build vet test race fuzz bench bench-smoke experiments golden

# check is the full CI gate: vet, build, the default test suite (unit +
# determinism + golden), and the race-detector pass over the concurrent
# packages (the experiment engine, the bench cells it runs, and the
# simulator they share).
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench/... ./internal/sim/... ./internal/fault/... ./internal/hwpolicy/...

# fuzz runs the register-file fuzz target for a short smoke window; raise
# FUZZTIME for a longer campaign.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/hwpolicy -run '^$$' -fuzz FuzzAccelRegisterFile -fuzztime $(FUZZTIME)

# bench measures the hot-path benchmark suite and writes the results as
# machine-readable JSON (the numbers cited in README's Performance table).
BENCH_OUT ?= BENCH_pr3.json
bench:
	$(GO) run ./cmd/pmperf -out $(BENCH_OUT)

# bench-smoke compiles and runs every benchmark exactly once — a fast CI
# guard that the benchmark code itself stays green.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# experiments regenerates the full evaluation through the testing harness.
experiments:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# golden re-blesses testdata/*.golden after an intentional model change.
golden:
	$(GO) test ./internal/bench -run TestGoldenOutput -update
